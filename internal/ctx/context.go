package ctx

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ID uniquely identifies a context instance within a run.
type ID string

// State is the life-cycle state of a context (Figure 8 of the paper).
type State int

// Life-cycle states. A context starts Undecided; if it is irrelevant to any
// consistency constraint it becomes Consistent immediately. Otherwise it is
// buffered until an application uses it, at which point the resolution
// strategy decides Consistent or Inconsistent. Bad marks a context that has
// already been judged incorrect (Case 2 of Section 3.3) but has not been
// used yet; it will become Inconsistent when used.
const (
	Undecided State = iota + 1
	Consistent
	Bad
	Inconsistent
)

// String returns the paper's name for the state.
func (s State) String() string {
	switch s {
	case Undecided:
		return "undecided"
	case Consistent:
		return "consistent"
	case Bad:
		return "bad"
	case Inconsistent:
		return "inconsistent"
	default:
		return "invalid"
	}
}

// Terminal reports whether the state is a final decision.
func (s State) Terminal() bool { return s == Consistent || s == Inconsistent }

// StateFromString parses a state name as produced by State.String —
// the inverse used when restoring snapshotted life-cycle state.
func StateFromString(s string) (State, error) {
	switch s {
	case "undecided":
		return Undecided, nil
	case "consistent":
		return Consistent, nil
	case "bad":
		return Bad, nil
	case "inconsistent":
		return Inconsistent, nil
	default:
		return 0, fmt.Errorf("unknown context state %q", s)
	}
}

// Kind classifies contexts by the phenomenon they report, e.g. "location"
// or "rfid.read". Constraints quantify over kinds.
type Kind string

// Common kinds used by the bundled applications and simulators.
const (
	KindLocation Kind = "location"
	KindRFIDRead Kind = "rfid.read"
	KindPresence Kind = "presence"
	KindCall     Kind = "call"
)

// Validation errors returned by Context.Validate.
var (
	ErrNoID        = errors.New("context has empty id")
	ErrNoKind      = errors.New("context has empty kind")
	ErrNoTimestamp = errors.New("context has zero timestamp")
	ErrBadTTL      = errors.New("context has negative ttl")
)

// Context is one piece of environmental information. Fields hold the typed
// payload (e.g. x/y coordinates for a location). Contexts are immutable
// after construction except for their life-cycle state, which only the
// owning middleware mutates.
//
// Truth carries the ground-truth label used exclusively by the OPT-R oracle
// strategy and by the metrics collector; real resolution strategies must
// never consult it (the paper: "whether a particular context is corrupted
// or expected is unknown to any practical resolution strategy in advance").
type Context struct {
	ID        ID               `json:"id"`
	Kind      Kind             `json:"kind"`
	Source    string           `json:"source"`
	Subject   string           `json:"subject"`
	Timestamp time.Time        `json:"timestamp"`
	TTL       time.Duration    `json:"ttlNanos"`
	Fields    map[string]Value `json:"-"`
	Seq       uint64           `json:"seq"`

	// Truth is the experiment-only ground truth; see type comment.
	Truth Truth `json:"truth"`

	state State
}

// Truth records whether a context was corrupted by the error-injection
// model, and what the uncorrupted payload was.
type Truth struct {
	// Corrupted is true if the error model perturbed this context.
	Corrupted bool `json:"corrupted"`
	// Original holds the pre-corruption fields when Corrupted; nil otherwise.
	Original map[string]Value `json:"-"`
}

var idCounter atomic.Uint64

// NextID returns a fresh process-unique context ID with the given prefix.
func NextID(prefix string) ID {
	n := idCounter.Add(1)
	return ID(prefix + "-" + strconv.FormatUint(n, 10))
}

// Option configures a Context under construction.
type Option func(*Context)

// WithSource sets the producing source name.
func WithSource(source string) Option {
	return func(c *Context) { c.Source = source }
}

// WithSubject sets the entity the context is about (a person, a tag…).
func WithSubject(subject string) Option {
	return func(c *Context) { c.Subject = subject }
}

// WithTTL sets the available period after which the context expires.
func WithTTL(ttl time.Duration) Option {
	return func(c *Context) { c.TTL = ttl }
}

// WithID overrides the generated ID (tests and wire decoding).
func WithID(id ID) Option {
	return func(c *Context) { c.ID = id }
}

// WithSeq sets the source-local sequence number.
func WithSeq(seq uint64) Option {
	return func(c *Context) { c.Seq = seq }
}

// New builds an Undecided context of the given kind at the given logical
// time. The fields map is copied.
func New(kind Kind, at time.Time, fields map[string]Value, opts ...Option) *Context {
	c := &Context{
		ID:        NextID(string(kind)),
		Kind:      kind,
		Timestamp: at,
		Fields:    cloneFields(fields),
		state:     Undecided,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

func cloneFields(fields map[string]Value) map[string]Value {
	if fields == nil {
		return map[string]Value{}
	}
	out := make(map[string]Value, len(fields))
	for k, v := range fields {
		out[k] = v
	}
	return out
}

// Validate checks structural invariants.
func (c *Context) Validate() error {
	switch {
	case c.ID == "":
		return ErrNoID
	case c.Kind == "":
		return ErrNoKind
	case c.Timestamp.IsZero():
		return ErrNoTimestamp
	case c.TTL < 0:
		return ErrBadTTL
	default:
		return nil
	}
}

// State returns the current life-cycle state.
func (c *Context) State() State { return c.state }

// SetState transitions the life cycle. Illegal transitions return an error:
// terminal states are frozen, and Bad may only become Inconsistent.
func (c *Context) SetState(s State) error {
	if s < Undecided || s > Inconsistent {
		return fmt.Errorf("set state: invalid state %d", int(s))
	}
	if c.state.Terminal() && s != c.state {
		return fmt.Errorf("set state: %s is terminal, cannot become %s", c.state, s)
	}
	if c.state == Bad && s != Inconsistent && s != Bad {
		return fmt.Errorf("set state: bad context may only become inconsistent, not %s", s)
	}
	c.state = s
	return nil
}

// Field returns the named field value; ok is false if absent.
func (c *Context) Field(name string) (Value, bool) {
	v, ok := c.Fields[name]
	return v, ok
}

// FloatField returns a numeric field, or ok=false if absent or non-numeric.
func (c *Context) FloatField(name string) (float64, bool) {
	v, ok := c.Fields[name]
	if !ok {
		return 0, false
	}
	return v.Float()
}

// StrField returns a string field, or ok=false if absent or non-string.
func (c *Context) StrField(name string) (string, bool) {
	v, ok := c.Fields[name]
	if !ok {
		return "", false
	}
	return v.Str()
}

// Expired reports whether the context's available period has passed at the
// given instant. A zero TTL means the context never expires.
func (c *Context) Expired(now time.Time) bool {
	if c.TTL == 0 {
		return false
	}
	return now.After(c.Timestamp.Add(c.TTL))
}

// Age returns how old the context is at the given instant.
func (c *Context) Age(now time.Time) time.Duration {
	return now.Sub(c.Timestamp)
}

// Clone returns a deep copy sharing no mutable state with the receiver.
func (c *Context) Clone() *Context {
	cp := *c
	cp.Fields = cloneFields(c.Fields)
	if c.Truth.Original != nil {
		cp.Truth.Original = cloneFields(c.Truth.Original)
	}
	return &cp
}

// String renders a compact human-readable form for logs and tests.
func (c *Context) String() string {
	var b strings.Builder
	b.WriteString(string(c.ID))
	b.WriteByte('[')
	b.WriteString(string(c.Kind))
	if c.Subject != "" {
		b.WriteByte('/')
		b.WriteString(c.Subject)
	}
	b.WriteByte(']')
	keys := make([]string, 0, len(c.Fields))
	for k := range c.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(c.Fields[k].String())
	}
	b.WriteByte('}')
	return b.String()
}

// ByTimestamp sorts contexts chronologically, breaking ties by Seq then ID
// so orderings are deterministic.
type ByTimestamp []*Context

func (s ByTimestamp) Len() int           { return len(s) }
func (s ByTimestamp) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s ByTimestamp) Less(i, j int) bool { return Earlier(s[i], s[j]) }

// Earlier reports whether a orders strictly before b in the chronological
// (ByTimestamp) order: timestamp, then Seq, then ID. The order is total, so
// any sequence of contexts has exactly one sorted arrangement — incremental
// index maintenance (insertion by Earlier) and batch sorting agree.
func Earlier(a, b *Context) bool {
	if !a.Timestamp.Equal(b.Timestamp) {
		return a.Timestamp.Before(b.Timestamp)
	}
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	return a.ID < b.ID
}
