package ctx

import (
	"math"
	"time"
)

// Field names used by location contexts.
const (
	FieldX     = "x"
	FieldY     = "y"
	FieldFloor = "floor"
	FieldZone  = "zone"
)

// Point is a 2D position in metres.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Dist returns the Euclidean distance to o.
func (p Point) Dist(o Point) float64 {
	return math.Hypot(p.X-o.X, p.Y-o.Y)
}

// Add returns the vector sum p+o.
func (p Point) Add(o Point) Point { return Point{p.X + o.X, p.Y + o.Y} }

// Sub returns the vector difference p-o.
func (p Point) Sub(o Point) Point { return Point{p.X - o.X, p.Y - o.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Norm returns the Euclidean length of p as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// NewLocation builds a location context for subject at point p.
func NewLocation(subject string, at time.Time, p Point, opts ...Option) *Context {
	fields := map[string]Value{
		FieldX: Float(p.X),
		FieldY: Float(p.Y),
	}
	opts = append([]Option{WithSubject(subject)}, opts...)
	return New(KindLocation, at, fields, opts...)
}

// LocationPoint extracts the (x, y) point from a location context; ok is
// false for non-location contexts or missing coordinates.
func LocationPoint(c *Context) (Point, bool) {
	if c == nil || c.Kind != KindLocation {
		return Point{}, false
	}
	x, okX := c.FloatField(FieldX)
	y, okY := c.FloatField(FieldY)
	if !okX || !okY {
		return Point{}, false
	}
	return Point{X: x, Y: y}, true
}

// Velocity estimates the speed (m/s) implied by moving between two location
// contexts. It returns ok=false when either context lacks coordinates or
// the timestamps coincide (speed undefined).
func Velocity(a, b *Context) (speed float64, ok bool) {
	pa, okA := LocationPoint(a)
	pb, okB := LocationPoint(b)
	if !okA || !okB {
		return 0, false
	}
	dt := b.Timestamp.Sub(a.Timestamp).Seconds()
	if dt < 0 {
		dt = -dt
	}
	if dt == 0 {
		return 0, false
	}
	return pa.Dist(pb) / dt, true
}
