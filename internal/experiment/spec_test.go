package experiment

import (
	"errors"
	"testing"
)

func TestParseStrategies(t *testing.T) {
	names, err := ParseStrategies("OPT-R, D-BAD ,D-LAT")
	if err != nil {
		t.Fatal(err)
	}
	want := []StrategyName{OptR, DBad, DLat}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	if _, err := ParseStrategies(""); err == nil {
		t.Fatal("empty list accepted")
	}
	if _, err := ParseStrategies("D-BAD,bogus"); !errors.Is(err, ErrUnknownStrategy) {
		t.Fatalf("err = %v", err)
	}
}

func TestExtendedStrategiesAllConstructible(t *testing.T) {
	for _, n := range ExtendedStrategies() {
		if _, err := NewStrategy(n, newTestRNG(), nil); err != nil {
			t.Fatalf("NewStrategy(%s): %v", n, err)
		}
	}
}

func TestAppSpecsSane(t *testing.T) {
	for _, spec := range []AppSpec{CallForwardingApp(), RFIDApp()} {
		if spec.Name == "" {
			t.Fatal("empty app name")
		}
		ch := spec.NewChecker()
		if len(ch.Constraints()) != 5 {
			t.Fatalf("%s: %d constraints", spec.Name, len(ch.Constraints()))
		}
		eng := spec.NewEngine()
		if len(eng.Situations()) != 3 {
			t.Fatalf("%s: %d situations", spec.Name, len(eng.Situations()))
		}
		w, err := spec.NewWorkload(0.1, newTestRNG())
		if err != nil {
			t.Fatal(err)
		}
		if w.Contexts() == 0 || w.UseDelay != DefaultUseDelay {
			t.Fatalf("%s: workload %d contexts, delay %d",
				spec.Name, w.Contexts(), w.UseDelay)
		}
	}
}

func TestExtendedFigureSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := FigureConfig{
		ErrRates:   []float64{0.3},
		Groups:     2,
		Seed:       17,
		Strategies: ExtendedStrategies(),
	}
	fig, err := RunFigure(CallForwardingApp(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every extended strategy produced a point, and the unreliable ones
	// (random, policy) land below drop-bad.
	dbad, _ := fig.Point(0.3, DBad)
	for _, n := range []StrategyName{DRand, POld} {
		p, ok := fig.Point(0.3, n)
		if !ok {
			t.Fatalf("missing %s", n)
		}
		if p.CtxUseRate.Mean >= dbad.CtxUseRate.Mean {
			t.Fatalf("%s (%.3f) not below D-BAD (%.3f)",
				n, p.CtxUseRate.Mean, dbad.CtxUseRate.Mean)
		}
	}
}
