package experiment

import (
	"math/rand"
	"strings"
	"testing"
)

func TestCaseStudyReproducesPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("case study is slow")
	}
	cfg := DefaultCaseStudyConfig()
	cfg.Groups = 3
	cfg.Steps = 200
	res, err := RunCaseStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Shapes, not absolute numbers (paper: 96.5% / 84.7% / 100% / 91.7%).
	if res.SurvivalRate.Mean < 0.85 {
		t.Fatalf("survival rate %.3f too low", res.SurvivalRate.Mean)
	}
	if res.RemovalPrecision.Mean < 0.6 {
		t.Fatalf("removal precision %.3f too low", res.RemovalPrecision.Mean)
	}
	if res.Rule1Rate.Mean < 0.9 {
		t.Fatalf("Rule 1 rate %.3f too low", res.Rule1Rate.Mean)
	}
	if res.Rule2PrimeRate.Mean < 0.6 || res.Rule2PrimeRate.Mean > 1.0001 {
		t.Fatalf("Rule 2' rate %.3f out of range", res.Rule2PrimeRate.Mean)
	}
	if res.MeanTrackingError.Mean <= 0 || res.MeanTrackingError.Mean > 5 {
		t.Fatalf("mean tracking error %.3f implausible", res.MeanTrackingError.Mean)
	}
	text := FormatCaseStudy(res)
	for _, want := range []string{"survival rate", "removal precision", "Rule 1", "Rule 2'", "96.5%"} {
		if !strings.Contains(text, want) {
			t.Fatalf("case study rendering missing %q:\n%s", want, text)
		}
	}
}

func TestCaseStudyWorkloadShape(t *testing.T) {
	cfg := DefaultCaseStudyConfig()
	cfg.Steps = 50
	w, meanErr, err := caseStudyWorkload(cfg, newTestRNG())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Steps) != 50 {
		t.Fatalf("steps = %d", len(w.Steps))
	}
	if meanErr <= 0 {
		t.Fatalf("mean tracking error = %v", meanErr)
	}
	corrupted := w.CorruptedContexts()
	if corrupted == 0 || corrupted == w.Contexts() {
		t.Fatalf("corrupted = %d of %d", corrupted, w.Contexts())
	}
}

func newTestRNG() *rand.Rand { return rand.New(rand.NewSource(12345)) }
