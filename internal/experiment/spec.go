// Package experiment reproduces the paper's evaluation: the 320-group
// strategy comparison behind Figures 9 and 10 (context use rate and
// situation activation rate versus error rate, for OPT-R, D-BAD, D-LAT and
// D-ALL on the Call Forwarding and RFID data anomalies applications), the
// Landmarc case study of Section 5.2 (context survival rate, removal
// precision), and the heuristic-rule-holding study.
package experiment

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"ctxres/internal/apps/callforward"
	"ctxres/internal/apps/rfidmon"
	"ctxres/internal/constraint"
	"ctxres/internal/ctx"
	"ctxres/internal/inconsistency"
	"ctxres/internal/simspace"
	"ctxres/internal/situation"
	"ctxres/internal/strategy"
)

// StrategyName identifies a resolution strategy in reports and configs.
type StrategyName string

// The compared strategies. OPT-R is always the normalization baseline.
const (
	OptR    StrategyName = "OPT-R"
	DBad    StrategyName = "D-BAD"
	DLat    StrategyName = "D-LAT"
	DAll    StrategyName = "D-ALL"
	DRand   StrategyName = "D-RAND"
	POld    StrategyName = "P-OLD"       // user policy: discard the oldest
	DBadImp StrategyName = "D-BAD+I"     // extension: impact-aware ties
	DBadNoB StrategyName = "D-BAD/nobad" // ablation: bad-marking disabled
)

// ComparedStrategies returns the paper's four strategies in report order.
func ComparedStrategies() []StrategyName {
	return []StrategyName{OptR, DBad, DLat, DAll}
}

// ExtendedStrategies adds the strategies the paper mentions but does not
// plot (drop-random, a user policy) and the future-work extension
// (impact-aware tie resolution).
func ExtendedStrategies() []StrategyName {
	return []StrategyName{OptR, DBad, DBadImp, DLat, DAll, DRand, POld}
}

// ParseStrategies parses a comma-separated strategy list ("D-BAD,D-LAT").
func ParseStrategies(list string) ([]StrategyName, error) {
	if strings.TrimSpace(list) == "" {
		return nil, errors.New("empty strategy list")
	}
	var out []StrategyName
	for _, part := range strings.Split(list, ",") {
		name := StrategyName(strings.TrimSpace(part))
		if _, err := NewStrategy(name, rand.New(rand.NewSource(1)), nil); err != nil {
			return nil, err
		}
		out = append(out, name)
	}
	return out, nil
}

// ErrUnknownStrategy reports an unrecognized strategy name.
var ErrUnknownStrategy = errors.New("unknown strategy")

// NewStrategy instantiates a strategy by name. rng is used by randomized
// strategies; audit (optional) is wired into drop-bad variants.
func NewStrategy(name StrategyName, rng *rand.Rand, audit *inconsistency.RuleAudit) (strategy.Strategy, error) {
	var opts []strategy.DropBadOption
	if audit != nil {
		opts = append(opts, strategy.WithRuleAudit(audit))
	}
	switch name {
	case OptR:
		return strategy.NewOracle(), nil
	case DBad:
		return strategy.NewDropBad(opts...), nil
	case DBadNoB:
		return strategy.NewDropBad(append(opts, strategy.WithoutBadMarking())...), nil
	case DLat:
		return strategy.NewDropLatest(), nil
	case DAll:
		return strategy.NewDropAll(), nil
	case DRand:
		return strategy.NewDropRandom(rng), nil
	case POld:
		return strategy.NewPolicy(string(POld), strategy.PreferOldestVictim()), nil
	case DBadImp:
		return strategy.NewImpactAwareDropBad(strategy.FreshnessImpact(), opts...), nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownStrategy, name)
	}
}

// Workload is one experiment group's context stream: contexts grouped into
// submission steps. The contexts are prototypes shared across strategy
// runs; Clone() them before feeding a middleware.
type Workload struct {
	Steps [][]*ctx.Context
	// UseDelay is how many steps after submission the application uses a
	// context — the paper's "time window" before a context is used (zero
	// reduces drop-bad to drop-latest behaviour; Section 5.3).
	UseDelay int
}

// Contexts returns the total number of contexts in the workload.
func (w Workload) Contexts() int {
	n := 0
	for _, s := range w.Steps {
		n += len(s)
	}
	return n
}

// CorruptedContexts returns the ground-truth number of corrupted contexts.
func (w Workload) CorruptedContexts() int {
	n := 0
	for _, s := range w.Steps {
		for _, c := range s {
			if c.Truth.Corrupted {
				n++
			}
		}
	}
	return n
}

// AppSpec describes one application under test: its constraint and
// situation sets and its workload generator.
type AppSpec struct {
	// Name labels the application in reports ("call-forwarding", "rfid").
	Name string
	// NewChecker builds a fresh checker with the app's constraints.
	NewChecker func() *constraint.Checker
	// NewEngine builds a fresh situation engine with the app's situations.
	NewEngine func() *situation.Engine
	// NewWorkload generates one experiment group's stream at the given
	// controlled error rate.
	NewWorkload func(errRate float64, rng *rand.Rand) (Workload, error)
}

// DefaultUseDelay is the time window (in steps) before an application uses
// a context.
const DefaultUseDelay = 2

// CallForwardingApp returns the Call Forwarding application spec
// (Figure 9's subject).
func CallForwardingApp() AppSpec {
	floor := simspace.OfficeFloor()
	return AppSpec{
		Name:       "call-forwarding",
		NewChecker: func() *constraint.Checker { return callforward.Checker(floor) },
		NewEngine:  func() *situation.Engine { return callforward.Engine(floor) },
		NewWorkload: func(errRate float64, rng *rand.Rand) (Workload, error) {
			cfg := callforward.DefaultWorkload(errRate)
			cs, err := callforward.Generate(cfg, rng)
			if err != nil {
				return Workload{}, err
			}
			steps := make([][]*ctx.Context, len(cs))
			for i, c := range cs {
				steps[i] = []*ctx.Context{c}
			}
			return Workload{Steps: steps, UseDelay: DefaultUseDelay}, nil
		},
	}
}

// RFIDApp returns the RFID data anomalies application spec (Figure 10's
// subject).
func RFIDApp() AppSpec {
	return AppSpec{
		Name:       "rfid",
		NewChecker: rfidmon.Checker,
		NewEngine:  rfidmon.Engine,
		NewWorkload: func(errRate float64, rng *rand.Rand) (Workload, error) {
			cfg := rfidmon.DefaultWorkload(errRate)
			cycles, err := rfidmon.Generate(cfg, rng)
			if err != nil {
				return Workload{}, err
			}
			return Workload{Steps: cycles, UseDelay: DefaultUseDelay}, nil
		},
	}
}
