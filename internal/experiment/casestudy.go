package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"ctxres/internal/apps/callforward"
	"ctxres/internal/constraint"
	"ctxres/internal/ctx"
	"ctxres/internal/errmodel"
	"ctxres/internal/landmarc"
	"ctxres/internal/simspace"
	"ctxres/internal/situation"
	"ctxres/internal/stats"
)

// CaseStudyConfig parameterizes the Section 5.2 Landmarc case study: a
// walker tracked by the LANDMARC substrate under realistic channel noise,
// gross errors injected at a controlled rate, resolved by drop-bad.
type CaseStudyConfig struct {
	// Steps is the number of tracking samples per group.
	Steps int
	// Groups is the number of independent repetitions.
	Groups int
	// Seed is the base seed.
	Seed int64
	// ErrorRate is the gross-error injection rate.
	ErrorRate float64
	// JumpMin/JumpMax bound the injected displacement in metres.
	JumpMin, JumpMax float64
	// NoiseSigma is the LANDMARC channel shadowing in dB.
	NoiseSigma float64
	// GridSpacing is the reference-tag pitch in metres.
	GridSpacing float64
	// VelocityLimit is the case-study velocity tolerance in m/s, chosen to
	// absorb estimation noise while catching gross errors (the paper's
	// "150% for error tolerance" scaled for the noisy substrate).
	VelocityLimit float64
	// UseDelay is the window (in steps) before the application uses a
	// context.
	UseDelay int
}

// DefaultCaseStudyConfig returns the calibrated configuration.
func DefaultCaseStudyConfig() CaseStudyConfig {
	return CaseStudyConfig{
		Steps:         300,
		Groups:        10,
		Seed:          20080617,
		ErrorRate:     0.2,
		JumpMin:       15,
		JumpMax:       35,
		NoiseSigma:    1.0,
		GridSpacing:   2,
		VelocityLimit: 3.5,
		UseDelay:      DefaultUseDelay,
	}
}

// CaseStudyResult aggregates the case-study measurements over all groups.
type CaseStudyResult struct {
	// SurvivalRate: fraction of correct location contexts not discarded
	// (paper: 96.5%).
	SurvivalRate stats.Summary
	// RemovalPrecision: fraction of discarded contexts that were indeed
	// incorrect (paper: 84.7%).
	RemovalPrecision stats.Summary
	// Rule1Rate: fraction of audited inconsistencies containing a
	// corrupted context (paper: Rule 1 always held).
	Rule1Rate stats.Summary
	// Rule2PrimeRate: fraction where some corrupted member out-counted
	// every expected member (paper: 91.7%).
	Rule2PrimeRate stats.Summary
	// MeanTrackingError is the LANDMARC estimation error on expected
	// contexts, for reference.
	MeanTrackingError stats.Summary
}

// caseStudyChecker builds the velocity constraints used by the case study.
func caseStudyChecker(limit float64) *constraint.Checker {
	ch := constraint.NewChecker()
	pair := func(name string, reach uint64) *constraint.Constraint {
		return &constraint.Constraint{
			Name: name,
			Doc:  "case-study velocity constraint over the tracked stream",
			Formula: constraint.Forall("a", ctx.KindLocation,
				constraint.Forall("b", ctx.KindLocation,
					constraint.Implies(
						constraint.And(
							constraint.SameSubject("a", "b"),
							constraint.StreamWithin("a", "b", reach),
						),
						constraint.VelocityBelow("a", "b", limit)))),
		}
	}
	ch.MustRegister(pair("cs-velocity-adjacent", 1))
	ch.MustRegister(pair("cs-velocity-skip1", 2))
	return ch
}

// caseStudyWorkload generates one group's LANDMARC-tracked stream.
func caseStudyWorkload(cfg CaseStudyConfig, rng *rand.Rand) (Workload, float64, error) {
	floor := simspace.OfficeFloor()
	walker := callforward.Walk(floor)
	radio := landmarc.DefaultRadio()
	radio.ShadowSigma = cfg.NoiseSigma
	field, err := landmarc.GridField(floor.Width, floor.Height, cfg.GridSpacing, radio, 4)
	if err != nil {
		return Workload{}, 0, fmt.Errorf("landmarc field: %w", err)
	}
	injector, err := errmodel.NewInjector(cfg.ErrorRate, rng)
	if err != nil {
		return Workload{}, 0, fmt.Errorf("injector: %w", err)
	}
	injector.Register(ctx.KindLocation, errmodel.LocationJump(cfg.JumpMin, cfg.JumpMax))

	start := time.Date(2008, 6, 17, 9, 0, 0, 0, time.UTC)
	steps := make([][]*ctx.Context, 0, cfg.Steps)
	trackErrSum, trackErrN := 0.0, 0
	for i := 0; i < cfg.Steps; i++ {
		at := start.Add(time.Duration(i) * callforward.SampleStep)
		truth := walker.PositionAt(at.Sub(start))
		est := field.Estimate(truth, rng)
		c := ctx.NewLocation(callforward.Subject, at, est,
			ctx.WithSource("landmarc"),
			ctx.WithSeq(uint64(i+1)),
			ctx.WithTTL(callforward.ContextTTL),
		)
		if !injector.Apply(c) {
			trackErrSum += truth.Dist(est)
			trackErrN++
		}
		steps = append(steps, []*ctx.Context{c})
	}
	meanErr := 0.0
	if trackErrN > 0 {
		meanErr = trackErrSum / float64(trackErrN)
	}
	return Workload{Steps: steps, UseDelay: cfg.UseDelay}, meanErr, nil
}

// RunCaseStudy reproduces the Section 5.2 study with the drop-bad strategy.
func RunCaseStudy(cfg CaseStudyConfig) (CaseStudyResult, error) {
	spec := AppSpec{
		Name:       "landmarc-case-study",
		NewChecker: func() *constraint.Checker { return caseStudyChecker(cfg.VelocityLimit) },
		NewEngine:  situation.NewEngine,
	}
	var survival, precision, rule1, rule2p, trackErr []float64
	for g := 0; g < cfg.Groups; g++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(g)))
		w, meanErr, err := caseStudyWorkload(cfg, rng)
		if err != nil {
			return CaseStudyResult{}, fmt.Errorf("group %d: %w", g, err)
		}
		res, err := RunOnce(spec, w, DBad, rng, true)
		if err != nil {
			return CaseStudyResult{}, fmt.Errorf("group %d: %w", g, err)
		}
		survival = append(survival, res.Rates.SurvivalRate)
		precision = append(precision, res.Rates.RemovalPrecision)
		rule1 = append(rule1, res.Audit.Rule1Rate())
		rule2p = append(rule2p, res.Audit.Rule2PrimeRate())
		trackErr = append(trackErr, meanErr)
	}
	return CaseStudyResult{
		SurvivalRate:      stats.Summarize(survival),
		RemovalPrecision:  stats.Summarize(precision),
		Rule1Rate:         stats.Summarize(rule1),
		Rule2PrimeRate:    stats.Summarize(rule2p),
		MeanTrackingError: stats.Summarize(trackErr),
	}, nil
}
