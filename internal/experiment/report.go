package experiment

import (
	"fmt"
	"sort"
	"strings"
)

// FormatFigure renders a reproduced figure as the two panels the paper
// plots: context use rate (top) and situation activation rate (bottom),
// per strategy and error rate, in percent.
func FormatFigure(f FigureResult, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s application\n", title, f.App)
	b.WriteString(formatPanel(f, "ctxUseRate (%)", func(p PointResult) float64 {
		return p.CtxUseRate.Mean * 100
	}))
	b.WriteString(formatPanel(f, "sitActRate (%)", func(p PointResult) float64 {
		return p.SitActRate.Mean * 100
	}))
	return b.String()
}

func formatPanel(f FigureResult, label string, value func(PointResult) float64) string {
	rates := figureRates(f)
	strategies := figureStrategies(f)

	var b strings.Builder
	fmt.Fprintf(&b, "\n  %s\n", label)
	b.WriteString("  strategy")
	for _, r := range rates {
		fmt.Fprintf(&b, "%10.0f%%", r*100)
	}
	b.WriteByte('\n')
	for _, s := range strategies {
		fmt.Fprintf(&b, "  %-8s", s)
		for _, r := range rates {
			p, ok := f.Point(r, s)
			if !ok {
				b.WriteString("         —")
				continue
			}
			fmt.Fprintf(&b, "%10.1f", value(p))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FigureCSV renders a reproduced figure as CSV: one row per point with
// both metrics and confidence intervals.
func FigureCSV(f FigureResult) string {
	var b strings.Builder
	b.WriteString("app,errRate,strategy,ctxUseRate,ctxUseCI95,sitActRate,sitActCI95,groups\n")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%s,%.2f,%s,%.4f,%.4f,%.4f,%.4f,%d\n",
			f.App, p.ErrRate, p.Strategy,
			p.CtxUseRate.Mean, p.CtxUseRate.CI95,
			p.SitActRate.Mean, p.SitActRate.CI95,
			p.CtxUseRate.N)
	}
	return b.String()
}

// PaperCaseStudy holds the values the paper reports for Section 5.2.
var PaperCaseStudy = struct {
	SurvivalRate     float64
	RemovalPrecision float64
	Rule1Rate        float64
	Rule2PrimeRate   float64
}{
	SurvivalRate:     0.965,
	RemovalPrecision: 0.847,
	Rule1Rate:        1.0,
	Rule2PrimeRate:   0.917,
}

// FormatCaseStudy renders the case study as a paper-vs-measured table.
func FormatCaseStudy(r CaseStudyResult) string {
	var b strings.Builder
	b.WriteString("Section 5.2 case study — LANDMARC tracking with D-BAD\n")
	fmt.Fprintf(&b, "  mean tracking error (expected contexts): %.2f m\n\n", r.MeanTrackingError.Mean)
	fmt.Fprintf(&b, "  %-28s %10s %12s\n", "measure", "paper", "measured")
	row := func(name string, paper float64, s fmt.Stringer) {
		fmt.Fprintf(&b, "  %-28s %9.1f%% %12s\n", name, paper*100, s)
	}
	row("context survival rate", PaperCaseStudy.SurvivalRate, pct(r.SurvivalRate.Mean))
	row("removal precision", PaperCaseStudy.RemovalPrecision, pct(r.RemovalPrecision.Mean))
	row("Rule 1 held", PaperCaseStudy.Rule1Rate, pct(r.Rule1Rate.Mean))
	row("Rule 2' held", PaperCaseStudy.Rule2PrimeRate, pct(r.Rule2PrimeRate.Mean))
	return b.String()
}

type pct float64

func (p pct) String() string { return fmt.Sprintf("%.1f%%", float64(p)*100) }

func figureRates(f FigureResult) []float64 {
	seen := map[float64]bool{}
	var rates []float64
	for _, p := range f.Points {
		if !seen[p.ErrRate] {
			seen[p.ErrRate] = true
			rates = append(rates, p.ErrRate)
		}
	}
	sort.Float64s(rates)
	return rates
}

func figureStrategies(f FigureResult) []StrategyName {
	seen := map[StrategyName]bool{}
	var names []StrategyName
	for _, p := range f.Points {
		if !seen[p.Strategy] {
			seen[p.Strategy] = true
			names = append(names, p.Strategy)
		}
	}
	return names
}
