package experiment

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestNewStrategyKnownNames(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, name := range []StrategyName{OptR, DBad, DLat, DAll, DRand, DBadNoB} {
		s, err := NewStrategy(name, rng, nil)
		if err != nil {
			t.Fatalf("NewStrategy(%s): %v", name, err)
		}
		if s == nil {
			t.Fatalf("NewStrategy(%s) returned nil", name)
		}
	}
	if _, err := NewStrategy("bogus", rng, nil); !errors.Is(err, ErrUnknownStrategy) {
		t.Fatalf("err = %v", err)
	}
}

func TestWorkloadCounters(t *testing.T) {
	spec := CallForwardingApp()
	w, err := spec.NewWorkload(0.3, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if w.Contexts() != 200 {
		t.Fatalf("Contexts = %d", w.Contexts())
	}
	c := w.CorruptedContexts()
	if c < 35 || c > 90 {
		t.Fatalf("CorruptedContexts = %d at rate 0.3", c)
	}
}

func TestRunOnceOracleUsesAllExpected(t *testing.T) {
	spec := CallForwardingApp()
	w, err := spec.NewWorkload(0.2, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOnce(spec, w, OptR, rand.New(rand.NewSource(8)), false)
	if err != nil {
		t.Fatal(err)
	}
	wantUsed := w.Contexts() - w.CorruptedContexts()
	if res.Rates.UsedContexts != wantUsed {
		t.Fatalf("OPT-R used %d, want %d (all expected)", res.Rates.UsedContexts, wantUsed)
	}
	if res.Rates.UsedCorrupted != 0 {
		t.Fatalf("OPT-R used %d corrupted contexts", res.Rates.UsedCorrupted)
	}
	if res.Rates.SurvivalRate != 1 || res.Rates.RemovalPrecision != 1 {
		t.Fatalf("OPT-R rates = %+v", res.Rates)
	}
}

func TestRunOnceRepeatableOnSharedWorkload(t *testing.T) {
	// Running two strategies (or the same strategy twice) over one
	// workload must not interfere: contexts are cloned per run.
	spec := CallForwardingApp()
	w, err := spec.NewWorkload(0.2, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunOnce(spec, w, DBad, rand.New(rand.NewSource(1)), false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOnce(spec, w, DBad, rand.New(rand.NewSource(1)), false)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rates != b.Rates {
		t.Fatalf("repeat run diverged: %+v vs %+v", a.Rates, b.Rates)
	}
}

func TestRunGroupNormalizesAgainstOracle(t *testing.T) {
	spec := CallForwardingApp()
	group, err := RunGroup(spec, 0.2, ComparedStrategies(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if n := group.Norm[OptR]; n.CtxUseRate != 1 || n.SitActRate != 1 {
		t.Fatalf("OPT-R normalized to %+v, want 100%%", n)
	}
	for _, s := range []StrategyName{DBad, DLat, DAll} {
		n, ok := group.Norm[s]
		if !ok {
			t.Fatalf("missing %s", s)
		}
		if n.CtxUseRate <= 0 || n.CtxUseRate > 1.2 {
			t.Fatalf("%s ctxUseRate = %v out of plausible range", s, n.CtxUseRate)
		}
	}
}

func TestRunGroupAddsBaselineWhenMissing(t *testing.T) {
	spec := CallForwardingApp()
	group, err := RunGroup(spec, 0.1, []StrategyName{DLat}, 43)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := group.Runs[OptR]; !ok {
		t.Fatal("baseline not added")
	}
}

// TestFigureShapeCallForwarding is the headline reproduction check on a
// reduced configuration: the paper's ordering OPT-R ≥ D-BAD > D-LAT and
// D-BAD > D-ALL must hold, with D-LAT/D-ALL substantially reduced.
func TestFigureShapeCallForwarding(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction is slow")
	}
	cfg := FigureConfig{
		ErrRates:   []float64{0.2, 0.4},
		Groups:     6,
		Seed:       99,
		Strategies: ComparedStrategies(),
	}
	fig, err := RunFigure(CallForwardingApp(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertFigureShape(t, fig, cfg)
}

func TestFigureShapeRFID(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction is slow")
	}
	cfg := FigureConfig{
		ErrRates:   []float64{0.2, 0.4},
		Groups:     6,
		Seed:       7,
		Strategies: ComparedStrategies(),
	}
	fig, err := RunFigure(RFIDApp(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertFigureShape(t, fig, cfg)
}

func assertFigureShape(t *testing.T, fig FigureResult, cfg FigureConfig) {
	t.Helper()
	for _, rate := range cfg.ErrRates {
		opt, _ := fig.Point(rate, OptR)
		dbad, _ := fig.Point(rate, DBad)
		dlat, _ := fig.Point(rate, DLat)
		dall, _ := fig.Point(rate, DAll)
		if opt.CtxUseRate.Mean != 1 {
			t.Fatalf("rate %v: OPT-R ctxUse = %v", rate, opt.CtxUseRate.Mean)
		}
		if dbad.CtxUseRate.Mean <= dlat.CtxUseRate.Mean {
			t.Fatalf("rate %v: D-BAD (%.3f) not above D-LAT (%.3f) on ctxUse",
				rate, dbad.CtxUseRate.Mean, dlat.CtxUseRate.Mean)
		}
		if dbad.CtxUseRate.Mean <= dall.CtxUseRate.Mean {
			t.Fatalf("rate %v: D-BAD (%.3f) not above D-ALL (%.3f) on ctxUse",
				rate, dbad.CtxUseRate.Mean, dall.CtxUseRate.Mean)
		}
		if dall.CtxUseRate.Mean >= dlat.CtxUseRate.Mean {
			t.Fatalf("rate %v: D-ALL (%.3f) not the worst (D-LAT %.3f)",
				rate, dall.CtxUseRate.Mean, dlat.CtxUseRate.Mean)
		}
		// D-BAD should land close to the oracle, the baselines well below.
		if dbad.CtxUseRate.Mean < 0.75 {
			t.Fatalf("rate %v: D-BAD ctxUse = %.3f, implausibly low", rate, dbad.CtxUseRate.Mean)
		}
	}
}

func TestFormatFigureRendering(t *testing.T) {
	fig := FigureResult{App: "demo"}
	cfg := FigureConfig{ErrRates: []float64{0.1}, Groups: 2, Seed: 3,
		Strategies: []StrategyName{OptR, DLat}}
	var err error
	fig, err = RunFigure(CallForwardingApp(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatFigure(fig, "Figure 9")
	for _, want := range []string{"Figure 9", "ctxUseRate", "sitActRate", "OPT-R", "D-LAT"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendering missing %q:\n%s", want, text)
		}
	}
	csv := FigureCSV(fig)
	if !strings.Contains(csv, "app,errRate,strategy") ||
		!strings.Contains(csv, "call-forwarding,0.10,OPT-R") {
		t.Fatalf("csv malformed:\n%s", csv)
	}
}

// TestFigureDeterministicPerSeed guards the repository's reproducibility
// promise: the same seed yields bit-identical figures.
func TestFigureDeterministicPerSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := FigureConfig{ErrRates: []float64{0.2}, Groups: 2, Seed: 555,
		Strategies: ComparedStrategies()}
	a, err := RunFigure(CallForwardingApp(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFigure(CallForwardingApp(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ")
	}
	for i := range a.Points {
		pa, pb := a.Points[i], b.Points[i]
		if pa.CtxUseRate.Mean != pb.CtxUseRate.Mean ||
			pa.SitActRate.Mean != pb.SitActRate.Mean {
			t.Fatalf("point %d differs: %+v vs %+v", i, pa, pb)
		}
	}
}

// TestRunOnceStrategiesShareStream verifies the controlled-comparison
// property: every strategy in a group sees the identical context stream
// (ground truth and payloads), so differences are attributable to the
// strategies alone.
func TestRunOnceStrategiesShareStream(t *testing.T) {
	spec := CallForwardingApp()
	group, err := RunGroup(spec, 0.3, ComparedStrategies(), 77)
	if err != nil {
		t.Fatal(err)
	}
	// All strategies saw the same submissions: Used + Discarded + leftover
	// cannot exceed the workload, and OPT-R's discards equal the
	// ground-truth corrupted count.
	base := group.Baseline
	if base.DiscardedContexts == 0 {
		t.Fatal("baseline discarded nothing at 30% error rate")
	}
	for name, rates := range group.Runs {
		if rates.UsedExpected > base.UsedExpected {
			t.Fatalf("%s used more expected contexts (%d) than the oracle (%d)",
				name, rates.UsedExpected, base.UsedExpected)
		}
	}
}
