package experiment

import (
	"fmt"
	"math/rand"

	"ctxres/internal/constraint"
	"ctxres/internal/ctx"
	"ctxres/internal/inconsistency"
	"ctxres/internal/metrics"
	"ctxres/internal/middleware"
	"ctxres/internal/stats"
	"ctxres/internal/telemetry"
)

// RunResult is one middleware run's raw measurements.
type RunResult struct {
	Strategy StrategyName
	Rates    metrics.Rates
	Audit    *inconsistency.RuleAudit // non-nil for drop-bad runs with auditing
}

// RunOptions tune how a run invokes the middleware beyond the compared
// strategy.
type RunOptions struct {
	// Audited attaches a heuristic-rule audit (drop-bad case study).
	Audited bool
	// Parallelism is the checker worker count; <= 1 keeps the serial
	// checker. The parallel checker is proven output-equivalent, so this
	// must not change any measured outcome (pinned by
	// TestParallelCheckerNoRegression).
	Parallelism int
	// Telemetry, when non-nil, instruments the run's middleware with the
	// given registry (ctxbench uses this to measure telemetry overhead on
	// the figure workloads). It does not change any measured outcome.
	Telemetry *telemetry.Registry
}

// RunOnce replays one workload through a fresh middleware configured with
// the named strategy and returns the raw metrics. The workload's prototype
// contexts are cloned, so RunOnce may be called repeatedly on the same
// workload (the paper runs all four strategies on identical streams).
func RunOnce(spec AppSpec, w Workload, name StrategyName, rng *rand.Rand, audited bool) (RunResult, error) {
	return RunOnceOpts(spec, w, name, rng, RunOptions{Audited: audited})
}

// RunOnceOpts is RunOnce with explicit run options.
func RunOnceOpts(spec AppSpec, w Workload, name StrategyName, rng *rand.Rand, opts RunOptions) (RunResult, error) {
	var audit *inconsistency.RuleAudit
	if opts.Audited {
		audit = &inconsistency.RuleAudit{}
	}
	strat, err := NewStrategy(name, rng, audit)
	if err != nil {
		return RunResult{}, err
	}
	collector := metrics.NewCollector()
	engine := spec.NewEngine()
	mwOpts := []middleware.Option{middleware.WithHooks(collector.Hooks())}
	if opts.Parallelism > 1 {
		mwOpts = append(mwOpts, middleware.WithCheckerOptions(
			middleware.CheckerOptions{Parallelism: opts.Parallelism}))
	}
	if opts.Telemetry != nil {
		mwOpts = append(mwOpts, middleware.WithTelemetry(opts.Telemetry))
	}
	m := middleware.New(spec.NewChecker(), strat, mwOpts...)

	// Clone the prototypes: life-cycle state is per-run.
	cloned := make([][]*ctx.Context, len(w.Steps))
	for i, step := range w.Steps {
		cloned[i] = make([]*ctx.Context, len(step))
		for j, c := range step {
			cloned[i][j] = c.Clone()
		}
	}

	// Situation activation is measured over the expected (ground-truth
	// correct) part of the delivered view: corrupted contexts a strategy
	// failed to remove must not be credited with adaptive behaviour, and
	// discarding needed contexts must cost activation — the paper's
	// framing of both metrics as discarding impact.
	//
	// The sitActRate numerator is the number of (evaluation step,
	// situation) pairs with the situation active — activation *coverage*.
	// Counting raw activation events would reward strategies that discard
	// so much that situations flap (each gap re-activates), inverting the
	// metric's meaning.
	activeSteps := 0
	evaluate := func() {
		delivered := m.Pool().Delivered()
		expected := make([]*ctx.Context, 0, len(delivered))
		for _, c := range delivered {
			if !c.Truth.Corrupted {
				expected = append(expected, c)
			}
		}
		engine.Evaluate(constraint.NewSliceUniverse(expected), m.Now())
		for _, sit := range engine.Situations() {
			if engine.Active(sit.Name) {
				activeSteps++
			}
		}
	}

	use := func(step []*ctx.Context) {
		for _, c := range step {
			// Failures (discarded, inconsistent, expired) are the
			// resolution strategy's doing; the collector counts them via
			// hooks.
			_, _ = m.Use(c.ID)
		}
		evaluate()
	}

	for i, step := range cloned {
		for _, c := range step {
			if _, err := m.Submit(c); err != nil {
				return RunResult{}, fmt.Errorf("run %s step %d: %w", name, i, err)
			}
		}
		if j := i - w.UseDelay; j >= 0 {
			use(cloned[j])
		}
	}
	// Drain the tail of the window.
	for j := len(cloned) - w.UseDelay; j < len(cloned); j++ {
		if j >= 0 {
			use(cloned[j])
		}
	}

	return RunResult{
		Strategy: name,
		Rates:    collector.Snapshot(activeSteps),
		Audit:    audit,
	}, nil
}

// GroupResult holds one experiment group's normalized metrics for every
// compared strategy.
type GroupResult struct {
	Baseline metrics.Rates
	Runs     map[StrategyName]metrics.Rates
	Norm     map[StrategyName]metrics.Normalized
}

// RunGroup generates one workload and replays it under every strategy in
// names (plus OPT-R if absent, as the baseline), normalizing each run
// against OPT-R.
func RunGroup(spec AppSpec, errRate float64, names []StrategyName, seed int64) (GroupResult, error) {
	return RunGroupOpts(spec, errRate, names, seed, RunOptions{})
}

// RunGroupOpts is RunGroup with explicit run options.
func RunGroupOpts(spec AppSpec, errRate float64, names []StrategyName, seed int64, opts RunOptions) (GroupResult, error) {
	wlRNG := rand.New(rand.NewSource(seed))
	w, err := spec.NewWorkload(errRate, wlRNG)
	if err != nil {
		return GroupResult{}, fmt.Errorf("workload: %w", err)
	}

	all := names
	hasBaseline := false
	for _, n := range names {
		if n == OptR {
			hasBaseline = true
			break
		}
	}
	if !hasBaseline {
		all = append([]StrategyName{OptR}, names...)
	}

	out := GroupResult{
		Runs: make(map[StrategyName]metrics.Rates, len(all)),
		Norm: make(map[StrategyName]metrics.Normalized, len(all)),
	}
	for _, n := range all {
		// Strategy-internal randomness is seeded independently of the
		// workload so every strategy sees the identical stream.
		runOpts := opts
		runOpts.Audited = false
		res, err := RunOnceOpts(spec, w, n, rand.New(rand.NewSource(seed+1)), runOpts)
		if err != nil {
			return GroupResult{}, err
		}
		out.Runs[n] = res.Rates
	}
	out.Baseline = out.Runs[OptR]
	for n, r := range out.Runs {
		out.Norm[n] = metrics.Normalize(r, out.Baseline)
	}
	return out, nil
}

// FigureConfig parameterizes a Figure 9/10 reproduction.
type FigureConfig struct {
	// ErrRates are the controlled error rates (paper: 10%–40%).
	ErrRates []float64
	// Groups is the number of experiment groups per point (paper: 20).
	Groups int
	// Seed is the base seed; group g at rate index r uses
	// Seed + int64(r*Groups+g).
	Seed int64
	// Strategies are the compared strategies (default: the paper's four).
	Strategies []StrategyName
	// Parallelism is the checker worker count for every run; <= 1 keeps
	// the serial checker (the default and the paper's configuration).
	Parallelism int
}

// DefaultFigureConfig reproduces the paper's setting.
func DefaultFigureConfig() FigureConfig {
	return FigureConfig{
		ErrRates:   []float64{0.1, 0.2, 0.3, 0.4},
		Groups:     20,
		Seed:       20080617,
		Strategies: ComparedStrategies(),
	}
}

// PointResult aggregates one (error rate, strategy) data point over all
// groups.
type PointResult struct {
	ErrRate    float64
	Strategy   StrategyName
	CtxUseRate stats.Summary
	SitActRate stats.Summary
}

// FigureResult is a full reproduced figure: every point of both panels.
type FigureResult struct {
	App    string
	Points []PointResult
}

// Point returns the data point for the given rate and strategy.
func (f FigureResult) Point(errRate float64, name StrategyName) (PointResult, bool) {
	for _, p := range f.Points {
		if p.ErrRate == errRate && p.Strategy == name {
			return p, true
		}
	}
	return PointResult{}, false
}

// RunFigure reproduces one figure: for every error rate it runs the
// configured number of groups, normalizes every strategy against OPT-R,
// and averages.
func RunFigure(spec AppSpec, cfg FigureConfig) (FigureResult, error) {
	if len(cfg.Strategies) == 0 {
		cfg.Strategies = ComparedStrategies()
	}
	result := FigureResult{App: spec.Name}
	type sample struct{ ctxUse, sitAct []float64 }
	for ri, rate := range cfg.ErrRates {
		samples := make(map[StrategyName]*sample, len(cfg.Strategies))
		for _, n := range cfg.Strategies {
			samples[n] = &sample{}
		}
		for g := 0; g < cfg.Groups; g++ {
			seed := cfg.Seed + int64(ri*cfg.Groups+g)
			group, err := RunGroupOpts(spec, rate, cfg.Strategies, seed,
				RunOptions{Parallelism: cfg.Parallelism})
			if err != nil {
				return FigureResult{}, fmt.Errorf("rate %.0f%% group %d: %w", rate*100, g, err)
			}
			for _, n := range cfg.Strategies {
				s := samples[n]
				s.ctxUse = append(s.ctxUse, group.Norm[n].CtxUseRate)
				s.sitAct = append(s.sitAct, group.Norm[n].SitActRate)
			}
		}
		for _, n := range cfg.Strategies {
			s := samples[n]
			result.Points = append(result.Points, PointResult{
				ErrRate:    rate,
				Strategy:   n,
				CtxUseRate: stats.Summarize(s.ctxUse),
				SitActRate: stats.Summarize(s.sitAct),
			})
		}
	}
	return result, nil
}
