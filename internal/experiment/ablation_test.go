package experiment

import (
	"strings"
	"testing"
)

func TestAblationsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	res, err := RunAblations(AblationConfig{Groups: 3, Seed: 5, ErrRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	points := make(map[string]AblationPoint, len(res.Points))
	for _, p := range res.Points {
		points[p.Name] = p
	}
	def, ok := points["D-BAD window=2 (default)"]
	if !ok {
		t.Fatalf("missing default point; have %v", names(res))
	}
	zero, ok := points["D-BAD window=0 (≈ D-LAT)"]
	if !ok {
		t.Fatal("missing window=0 point")
	}
	noBad, ok := points["D-BAD no bad-marking"]
	if !ok {
		t.Fatal("missing no-bad-marking point")
	}

	// A zero window disables deferred resolution: corrupted contexts leak
	// to the application and recall collapses.
	if zero.CorruptedLeak.Mean <= def.CorruptedLeak.Mean {
		t.Fatalf("window=0 leak %.1f not above default %.1f",
			zero.CorruptedLeak.Mean, def.CorruptedLeak.Mean)
	}
	if zero.RemovalRecall.Mean >= def.RemovalRecall.Mean {
		t.Fatalf("window=0 recall %.2f not below default %.2f",
			zero.RemovalRecall.Mean, def.RemovalRecall.Mean)
	}
	// Disabling bad-marking loses most deferred discards.
	if noBad.RemovalRecall.Mean >= def.RemovalRecall.Mean {
		t.Fatalf("no-bad-marking recall %.2f not below default %.2f",
			noBad.RemovalRecall.Mean, def.RemovalRecall.Mean)
	}

	text := FormatAblations(res)
	for _, want := range []string{"variant", "ctxUseRate", "corrLeak", "recall", "window=0"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendering missing %q:\n%s", want, text)
		}
	}
}

func names(res AblationResult) []string {
	out := make([]string, 0, len(res.Points))
	for _, p := range res.Points {
		out = append(out, p.Name)
	}
	return out
}

func TestAblationsDefaultsApplied(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Zero-value config picks up the defaults rather than dividing by
	// zero or running zero groups.
	res, err := RunAblations(AblationConfig{Groups: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range res.Points {
		if p.CtxUseRate.N != 1 {
			t.Fatalf("groups = %d", p.CtxUseRate.N)
		}
	}
}
