package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"ctxres/internal/apps/callforward"
	"ctxres/internal/constraint"
	"ctxres/internal/metrics"
	"ctxres/internal/simspace"
	"ctxres/internal/stats"
)

// AblationConfig parameterizes the design-choice ablation runs, all on the
// Call Forwarding application at a 20% error rate.
type AblationConfig struct {
	Groups  int
	Seed    int64
	ErrRate float64
}

// DefaultAblationConfig returns the standard setting.
func DefaultAblationConfig() AblationConfig {
	return AblationConfig{Groups: 8, Seed: 20080617, ErrRate: 0.2}
}

// AblationPoint is one ablation variant's averaged normalized metrics.
type AblationPoint struct {
	Name       string
	CtxUseRate stats.Summary
	SitActRate stats.Summary
	// CorruptedLeak is the number of corrupted contexts delivered to the
	// application — the quality cost the two headline rates cannot show
	// (a zero-length window scores 100% on both while resolving nothing).
	CorruptedLeak stats.Summary
	// RemovalRecall is the fraction of corrupted contexts discarded.
	RemovalRecall stats.Summary
}

// AblationResult aggregates all ablation variants.
type AblationResult struct {
	Points []AblationPoint
}

// RunAblations measures the design choices DESIGN.md calls out:
//
//   - Resolution window: UseDelay 0 (a context is used immediately, which
//     Section 5.3 predicts reduces drop-bad to drop-latest behaviour) vs
//     the default window vs a longer one.
//   - Bad-marking: drop-bad with Case-2 bad-marking disabled.
//   - Constraint reach: adjacent-only velocity pairs vs the Section 3.1
//     refinement that also checks skip-1 pairs.
func RunAblations(cfg AblationConfig) (AblationResult, error) {
	if cfg.Groups <= 0 {
		cfg.Groups = DefaultAblationConfig().Groups
	}
	if cfg.ErrRate == 0 {
		cfg.ErrRate = DefaultAblationConfig().ErrRate
	}

	var out AblationResult
	base := CallForwardingApp()

	variants := []struct {
		name     string
		spec     AppSpec
		strat    StrategyName
		useDelay int
	}{
		{"D-BAD window=2 (default)", base, DBad, DefaultUseDelay},
		{"D-BAD window=0 (≈ D-LAT)", base, DBad, 0},
		{"D-BAD window=5", base, DBad, 5},
		{"D-LAT window=2", base, DLat, DefaultUseDelay},
		{"D-BAD no bad-marking", base, DBadNoB, DefaultUseDelay},
		{"D-BAD adjacent-only constraints", adjacentOnlyApp(), DBad, DefaultUseDelay},
	}

	for _, v := range variants {
		var ctxUse, sitAct, leak, recall []float64
		for g := 0; g < cfg.Groups; g++ {
			seed := cfg.Seed + int64(g)
			norm, err := runAblationGroup(v.spec, cfg.ErrRate, v.strat, v.useDelay, seed)
			if err != nil {
				return AblationResult{}, fmt.Errorf("%s group %d: %w", v.name, g, err)
			}
			ctxUse = append(ctxUse, norm.CtxUseRate)
			sitAct = append(sitAct, norm.SitActRate)
			leak = append(leak, float64(norm.Rates.UsedCorrupted))
			recall = append(recall, norm.Rates.RemovalRecall)
		}
		out.Points = append(out.Points, AblationPoint{
			Name:          v.name,
			CtxUseRate:    stats.Summarize(ctxUse),
			SitActRate:    stats.Summarize(sitAct),
			CorruptedLeak: stats.Summarize(leak),
			RemovalRecall: stats.Summarize(recall),
		})
	}
	return out, nil
}

type ablationGroupResult struct {
	CtxUseRate float64
	SitActRate float64
	Rates      metrics.Rates
}

func runAblationGroup(spec AppSpec, errRate float64, name StrategyName, useDelay int, seed int64) (normOut ablationGroupResult, err error) {
	wlRNG := randSource(seed)
	w, err := spec.NewWorkload(errRate, wlRNG)
	if err != nil {
		return normOut, err
	}
	w.UseDelay = useDelay
	baseline, err := RunOnce(spec, w, OptR, randSource(seed+1), false)
	if err != nil {
		return normOut, err
	}
	res, err := RunOnce(spec, w, name, randSource(seed+1), false)
	if err != nil {
		return normOut, err
	}
	if baseline.Rates.UsedExpected > 0 {
		normOut.CtxUseRate = float64(res.Rates.UsedExpected) / float64(baseline.Rates.UsedExpected)
	} else {
		normOut.CtxUseRate = 1
	}
	if baseline.Rates.Activations > 0 {
		normOut.SitActRate = float64(res.Rates.Activations) / float64(baseline.Rates.Activations)
	} else {
		normOut.SitActRate = 1
	}
	normOut.Rates = res.Rates
	return normOut, nil
}

// adjacentOnlyApp is the Call Forwarding app without the Section 3.1
// refinement: the skip-1 velocity constraint is removed, so count values
// discriminate less.
func adjacentOnlyApp() AppSpec {
	floor := simspace.OfficeFloor()
	spec := CallForwardingApp()
	spec.Name = "call-forwarding/adjacent-only"
	spec.NewChecker = func() *constraint.Checker {
		ch := constraint.NewChecker()
		for _, c := range callforward.Constraints(floor) {
			if c.Name == "cf-velocity-skip1" {
				continue
			}
			ch.MustRegister(c)
		}
		return ch
	}
	return spec
}

// FormatAblations renders the ablation table.
func FormatAblations(r AblationResult) string {
	var b strings.Builder
	b.WriteString("Design-choice ablations — Call Forwarding, err_rate 20%\n")
	fmt.Fprintf(&b, "  %-36s %12s %12s %10s %8s\n",
		"variant", "ctxUseRate", "sitActRate", "corrLeak", "recall")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-36s %11.1f%% %11.1f%% %10.1f %7.1f%%\n",
			p.Name, p.CtxUseRate.Mean*100, p.SitActRate.Mean*100,
			p.CorruptedLeak.Mean, p.RemovalRecall.Mean*100)
	}
	return b.String()
}

func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
