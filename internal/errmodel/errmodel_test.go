package errmodel

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"ctxres/internal/ctx"
)

var t0 = time.Date(2008, 6, 17, 9, 0, 0, 0, time.UTC)

func TestNewInjectorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := NewInjector(bad, rng); !errors.Is(err, ErrBadRate) {
			t.Fatalf("rate %v: err = %v", bad, err)
		}
	}
	if _, err := NewInjector(0.2, nil); !errors.Is(err, ErrNilRNG) {
		t.Fatalf("err = %v", err)
	}
	in, err := NewInjector(0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if in.Rate() != 0.2 {
		t.Fatalf("Rate = %v", in.Rate())
	}
}

func TestApplyRateControl(t *testing.T) {
	in, err := NewInjector(0.3, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	in.Register(ctx.KindLocation, LocationJump(5, 10))
	corrupted := 0
	const n = 5000
	for i := 0; i < n; i++ {
		c := ctx.NewLocation("p", t0, ctx.Point{X: 1, Y: 2})
		if in.Apply(c) {
			corrupted++
			if !c.Truth.Corrupted {
				t.Fatal("corrupted without mark")
			}
			if c.Truth.Original == nil {
				t.Fatal("original not preserved")
			}
			if ox := c.Truth.Original[ctx.FieldX]; !ox.Equal(ctx.Float(1)) {
				t.Fatalf("original x = %v", ox)
			}
		}
	}
	got := float64(corrupted) / n
	if got < 0.27 || got > 0.33 {
		t.Fatalf("corruption rate = %v, want ≈0.30", got)
	}
}

func TestApplySkipsUnregisteredKind(t *testing.T) {
	in, err := NewInjector(1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	c := ctx.New(ctx.KindPresence, t0, nil)
	if in.Apply(c) {
		t.Fatal("unregistered kind corrupted")
	}
}

func TestApplyNilAndAlreadyCorrupted(t *testing.T) {
	in, err := NewInjector(0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if in.Apply(nil) {
		t.Fatal("nil corrupted")
	}
	ghost := ctx.New(ctx.KindRFIDRead, t0, nil)
	ghost.Truth.Corrupted = true
	if !in.Apply(ghost) {
		t.Fatal("pre-corrupted context not reported")
	}
}

func TestApplyAll(t *testing.T) {
	in, err := NewInjector(1, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	in.Register(ctx.KindLocation, LocationJump(5, 10))
	batch := []*ctx.Context{
		ctx.NewLocation("p", t0, ctx.Point{}),
		ctx.NewLocation("p", t0, ctx.Point{}),
		ctx.New(ctx.KindPresence, t0, nil), // unregistered kind
	}
	if got := in.ApplyAll(batch); got != 2 {
		t.Fatalf("ApplyAll = %d, want 2", got)
	}
}

func TestLocationJumpDistanceRange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	corrupt := LocationJump(5, 10)
	for i := 0; i < 200; i++ {
		c := ctx.NewLocation("p", t0, ctx.Point{X: 3, Y: 4})
		corrupt(c, rng)
		p, ok := ctx.LocationPoint(c)
		if !ok {
			t.Fatal("location fields destroyed")
		}
		d := p.Dist(ctx.Point{X: 3, Y: 4})
		if d < 5-1e-9 || d > 10+1e-9 {
			t.Fatalf("jump distance %v outside [5,10]", d)
		}
	}
}

func TestLocationJumpIgnoresNonLocation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	corrupt := LocationJump(5, 10)
	c := ctx.New(ctx.KindPresence, t0, map[string]ctx.Value{"v": ctx.Int(1)})
	corrupt(c, rng)
	if v, _ := c.Field("v"); !v.Equal(ctx.Int(1)) {
		t.Fatal("non-location mutated")
	}
}

func TestZoneSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	corrupt := ZoneSwap([]string{"zone-1", "zone-2", "zone-3"})
	for i := 0; i < 100; i++ {
		c := ctx.New(ctx.KindRFIDRead, t0, map[string]ctx.Value{
			"zone":   ctx.String("zone-1"),
			"reader": ctx.String("reader-zone-1"),
		})
		corrupt(c, rng)
		z, _ := c.StrField("zone")
		if z == "zone-1" {
			t.Fatal("zone unchanged")
		}
		r, _ := c.StrField("reader")
		if r != "reader-"+z {
			t.Fatalf("reader %q inconsistent with zone %q", r, z)
		}
	}
}

func TestZoneSwapNoAlternative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	corrupt := ZoneSwap([]string{"zone-1"})
	c := ctx.New(ctx.KindRFIDRead, t0, map[string]ctx.Value{"zone": ctx.String("zone-1")})
	corrupt(c, rng)
	if z, _ := c.StrField("zone"); z != "zone-1" {
		t.Fatal("zone changed without alternatives")
	}
}

// TestCorruptorCoveragePerKind pins the contract the health tracker and
// the soak harness rely on: every context kind the middleware ships has
// a stock corruptor that (a) actually mutates the payload of a
// representative context and (b) never touches Truth — marking a context
// corrupted is the injector's job, so ground-truth metrics and the OPT-R
// oracle stay trustworthy whichever corruptor is plugged in.
func TestCorruptorCoveragePerKind(t *testing.T) {
	cases := []struct {
		kind    ctx.Kind
		corrupt Corruptor
		make    func() *ctx.Context
		payload []string // fields that must survive as keys
	}{
		{
			kind:    ctx.KindLocation,
			corrupt: LocationJump(5, 10),
			make: func() *ctx.Context {
				return ctx.NewLocation("p", t0, ctx.Point{X: 3, Y: 4})
			},
			payload: []string{ctx.FieldX, ctx.FieldY},
		},
		{
			kind:    ctx.KindRFIDRead,
			corrupt: ZoneSwap([]string{"zone-1", "zone-2", "zone-3"}),
			make: func() *ctx.Context {
				return ctx.New(ctx.KindRFIDRead, t0, map[string]ctx.Value{
					"zone":   ctx.String("zone-1"),
					"reader": ctx.String("reader-zone-1"),
				})
			},
			payload: []string{"zone", "reader"},
		},
		{
			kind:    ctx.KindPresence,
			corrupt: FieldScramble("status", []string{"present", "away", "offline"}),
			make: func() *ctx.Context {
				return ctx.New(ctx.KindPresence, t0, map[string]ctx.Value{
					"status": ctx.String("present"),
				})
			},
			payload: []string{"status"},
		},
		{
			kind:    ctx.KindCall,
			corrupt: FieldScramble("callee", []string{"peter", "alice", "bob"}),
			make: func() *ctx.Context {
				return ctx.New(ctx.KindCall, t0, map[string]ctx.Value{
					"callee": ctx.String("peter"),
				})
			},
			payload: []string{"callee"},
		},
	}

	covered := map[ctx.Kind]bool{}
	for _, tc := range cases {
		covered[tc.kind] = true
		t.Run(string(tc.kind), func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			c := tc.make()
			if c.Kind != tc.kind {
				t.Fatalf("representative context has kind %q", c.Kind)
			}
			before := make(map[string]ctx.Value, len(c.Fields))
			for k, v := range c.Fields {
				before[k] = v
			}

			// The bare corruptor mutates payload and leaves Truth alone.
			tc.corrupt(c, rng)
			if c.Truth.Corrupted || c.Truth.Original != nil {
				t.Fatalf("corruptor touched Truth: %+v", c.Truth)
			}
			mutated := false
			for _, f := range tc.payload {
				v, ok := c.Field(f)
				if !ok {
					t.Fatalf("payload field %q dropped", f)
				}
				if !v.Equal(before[f]) {
					mutated = true
				}
			}
			if !mutated {
				t.Fatalf("corruptor left payload unchanged: %v", c.Fields)
			}

			// Through the injector, Truth records the pre-corruption payload.
			in, err := NewInjector(1, rng)
			if err != nil {
				t.Fatal(err)
			}
			in.Register(tc.kind, tc.corrupt)
			c2 := tc.make()
			if !in.Apply(c2) {
				t.Fatal("rate-1 injector did not corrupt")
			}
			if !c2.Truth.Corrupted {
				t.Fatal("injector did not mark Truth")
			}
			for _, f := range tc.payload {
				want := before[f]
				if got := c2.Truth.Original[f]; !got.Equal(want) {
					t.Fatalf("Truth.Original[%q] = %v, want %v", f, got, want)
				}
			}
		})
	}
	for _, kind := range []ctx.Kind{
		ctx.KindLocation, ctx.KindRFIDRead, ctx.KindPresence, ctx.KindCall,
	} {
		if !covered[kind] {
			t.Errorf("no corruptor coverage for kind %q", kind)
		}
	}
}

func TestFieldScramble(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	corrupt := FieldScramble("status", []string{"ok", "warn", "fail"})
	c := ctx.New(ctx.KindPresence, t0, map[string]ctx.Value{"status": ctx.String("ok")})
	corrupt(c, rng)
	s, _ := c.StrField("status")
	if s == "ok" {
		t.Fatal("field unchanged")
	}
	// Empty candidate list is a no-op.
	none := FieldScramble("status", nil)
	d := ctx.New(ctx.KindPresence, t0, map[string]ctx.Value{"status": ctx.String("ok")})
	none(d, rng)
	if s, _ := d.StrField("status"); s != "ok" {
		t.Fatal("no-op scramble mutated")
	}
}
