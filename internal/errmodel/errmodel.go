// Package errmodel injects context corruption at a controlled error rate,
// reproducing the experimental setting of Section 4.1: "Contexts were
// produced by a client thread with a controlled error rate (err_rate) from
// 10% to 40% with a pace of 10%", based on real-life RFID error
// observations. Corruption kinds are pluggable per context kind; each
// corrupted context keeps its original payload in Truth for ground-truth
// metrics and the OPT-R oracle.
package errmodel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"ctxres/internal/ctx"
)

// Corruptor mutates a context's fields in place to simulate a sensing
// error. It must not touch Truth; the injector handles bookkeeping.
type Corruptor func(c *ctx.Context, rng *rand.Rand)

// Injector corrupts a controlled fraction of the contexts passed through
// it.
type Injector struct {
	rate       float64
	rng        *rand.Rand
	corruptors map[ctx.Kind]Corruptor
}

// Injector construction errors.
var (
	ErrBadRate = errors.New("error rate must be in [0, 1]")
	ErrNilRNG  = errors.New("injector needs a random source")
)

// NewInjector builds an injector with the given error rate.
func NewInjector(rate float64, rng *rand.Rand) (*Injector, error) {
	if rate < 0 || rate > 1 || math.IsNaN(rate) {
		return nil, fmt.Errorf("%w: %v", ErrBadRate, rate)
	}
	if rng == nil {
		return nil, ErrNilRNG
	}
	return &Injector{
		rate:       rate,
		rng:        rng,
		corruptors: make(map[ctx.Kind]Corruptor),
	}, nil
}

// Rate returns the configured error rate.
func (in *Injector) Rate() float64 { return in.rate }

// Register installs the corruptor for a context kind, replacing any
// previous one.
func (in *Injector) Register(kind ctx.Kind, c Corruptor) {
	in.corruptors[kind] = c
}

// Apply corrupts c with probability rate, if a corruptor is registered for
// its kind. It reports whether corruption happened. Contexts already
// marked corrupted (e.g. ghost reads from the RFID simulator) are left
// untouched but still report true.
func (in *Injector) Apply(c *ctx.Context) bool {
	if c == nil {
		return false
	}
	if c.Truth.Corrupted {
		return true
	}
	corrupt, ok := in.corruptors[c.Kind]
	if !ok {
		return false
	}
	if in.rng.Float64() >= in.rate {
		return false
	}
	original := make(map[string]ctx.Value, len(c.Fields))
	for k, v := range c.Fields {
		original[k] = v
	}
	corrupt(c, in.rng)
	c.Truth = ctx.Truth{Corrupted: true, Original: original}
	return true
}

// ApplyAll runs Apply over a batch and returns how many were corrupted.
func (in *Injector) ApplyAll(cs []*ctx.Context) int {
	n := 0
	for _, c := range cs {
		if in.Apply(c) {
			n++
		}
	}
	return n
}

// LocationJump returns a corruptor that displaces a location context by a
// distance drawn uniformly from [minJump, maxJump] in a random direction —
// the "Peter jumps" error of the paper's running example.
func LocationJump(minJump, maxJump float64) Corruptor {
	return func(c *ctx.Context, rng *rand.Rand) {
		p, ok := ctx.LocationPoint(c)
		if !ok {
			return
		}
		dist := minJump + rng.Float64()*(maxJump-minJump)
		angle := rng.Float64() * 2 * math.Pi
		q := p.Add(ctx.Point{X: dist * math.Cos(angle), Y: dist * math.Sin(angle)})
		c.Fields[ctx.FieldX] = ctx.Float(q.X)
		c.Fields[ctx.FieldY] = ctx.Float(q.Y)
	}
}

// ZoneSwap returns a corruptor that rewrites an RFID read's zone (and
// reader) to a different zone drawn from zones — modelling a cross read
// attributed to the wrong antenna.
func ZoneSwap(zones []string) Corruptor {
	return func(c *ctx.Context, rng *rand.Rand) {
		cur, _ := c.StrField("zone")
		candidates := make([]string, 0, len(zones))
		for _, z := range zones {
			if z != cur {
				candidates = append(candidates, z)
			}
		}
		if len(candidates) == 0 {
			return
		}
		z := candidates[rng.Intn(len(candidates))]
		c.Fields["zone"] = ctx.String(z)
		c.Fields["reader"] = ctx.String("reader-" + z)
	}
}

// FieldScramble returns a corruptor that overwrites a string field with
// one of the given wrong values — a generic corruption for custom kinds.
func FieldScramble(field string, wrong []string) Corruptor {
	return func(c *ctx.Context, rng *rand.Rand) {
		if len(wrong) == 0 {
			return
		}
		cur, _ := c.StrField(field)
		candidates := make([]string, 0, len(wrong))
		for _, w := range wrong {
			if w != cur {
				candidates = append(candidates, w)
			}
		}
		if len(candidates) == 0 {
			return
		}
		c.Fields[field] = ctx.String(candidates[rng.Intn(len(candidates))])
	}
}
