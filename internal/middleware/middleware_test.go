package middleware

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ctxres/internal/constraint"
	"ctxres/internal/ctx"
	"ctxres/internal/situation"
	"ctxres/internal/strategy"
)

var t0 = time.Date(2008, 6, 17, 9, 0, 0, 0, time.UTC)

func velocityChecker(tb testing.TB, reach uint64, limit float64) *constraint.Checker {
	tb.Helper()
	ch := constraint.NewChecker()
	ch.MustRegister(&constraint.Constraint{
		Name: "vel",
		Formula: constraint.Forall("a", ctx.KindLocation,
			constraint.Forall("b", ctx.KindLocation,
				constraint.Implies(
					constraint.And(
						constraint.SameSubject("a", "b"),
						constraint.StreamWithin("a", "b", reach),
					),
					constraint.VelocityBelow("a", "b", limit),
				))),
	})
	return ch
}

func loc(id string, seq uint64, x float64, opts ...ctx.Option) *ctx.Context {
	opts = append([]ctx.Option{
		ctx.WithID(ctx.ID(id)), ctx.WithSeq(seq), ctx.WithSource("tracker"),
	}, opts...)
	return ctx.NewLocation("peter", t0.Add(time.Duration(seq)*time.Second),
		ctx.Point{X: x}, opts...)
}

func scenarioA() []*ctx.Context {
	cs := []*ctx.Context{
		loc("d1", 1, 0), loc("d2", 2, 1), loc("d3", 3, 9), loc("d4", 4, 3), loc("d5", 5, 4),
	}
	cs[2].Truth.Corrupted = true
	return cs
}

func TestSubmitValidation(t *testing.T) {
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropLatest())
	if _, err := m.Submit(nil); err == nil {
		t.Fatal("nil accepted")
	}
	bad := loc("x", 1, 0)
	bad.Kind = ""
	if _, err := m.Submit(bad); !errors.Is(err, ctx.ErrNoKind) {
		t.Fatalf("err = %v", err)
	}
	good := loc("ok", 1, 0)
	if _, err := m.Submit(good); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(good); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestIrrelevantKindFastPath(t *testing.T) {
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropBad())
	c := ctx.New(ctx.KindPresence, t0, nil, ctx.WithID("p1"))
	vios, err := m.Submit(c)
	if err != nil || len(vios) != 0 {
		t.Fatalf("Submit = %v, %v", vios, err)
	}
	if c.State() != ctx.Consistent {
		t.Fatalf("state = %v, want consistent", c.State())
	}
	got, err := m.Use("p1")
	if err != nil || got.ID != "p1" {
		t.Fatalf("Use = %v, %v", got, err)
	}
}

func TestDropLatestPipelineScenarioA(t *testing.T) {
	var discarded []ctx.ID
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropLatest(), WithHooks(Hooks{
		OnDiscard: func(c *ctx.Context, r DiscardReason) {
			if r != ReasonOnAddition {
				t.Errorf("reason = %v", r)
			}
			discarded = append(discarded, c.ID)
		},
	}))
	for _, c := range scenarioA() {
		if _, err := m.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	if len(discarded) != 1 || discarded[0] != "d3" {
		t.Fatalf("discarded = %v", discarded)
	}
	if _, err := m.Use("d3"); !errors.Is(err, ErrDiscarded) {
		t.Fatalf("Use(d3) err = %v", err)
	}
	if _, err := m.Use("d4"); err != nil {
		t.Fatalf("Use(d4) err = %v", err)
	}
	st := m.Stats()
	if st.Submitted != 5 || st.Discarded != 1 || st.Delivered != 1 || st.Detected != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestDropBadPipelineScenarioA(t *testing.T) {
	m := New(velocityChecker(t, 2, 1.5), strategy.NewDropBad())
	for _, c := range scenarioA() {
		if _, err := m.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing discarded at addition time.
	if st := m.Stats(); st.Discarded != 0 || st.Detected != 4 {
		t.Fatalf("Stats = %+v", st)
	}
	// Use d1 → delivered; d3 becomes bad.
	if _, err := m.Use("d1"); err != nil {
		t.Fatal(err)
	}
	// Use d3 → refused as inconsistent.
	if _, err := m.Use("d3"); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("Use(d3) err = %v", err)
	}
	// Everyone else delivers.
	for _, id := range []ctx.ID{"d2", "d4", "d5"} {
		if _, err := m.Use(id); err != nil {
			t.Fatalf("Use(%s) err = %v", id, err)
		}
	}
	st := m.Stats()
	if st.Delivered != 4 || st.Rejected != 1 || st.Discarded != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	// Re-reading a used context does not re-enter resolution.
	if _, err := m.Use("d1"); err != nil {
		t.Fatalf("re-read err = %v", err)
	}
	if st2 := m.Stats(); st2.Delivered != st.Delivered {
		t.Fatal("re-read counted as delivery")
	}
}

func TestUseErrors(t *testing.T) {
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropLatest())
	if _, err := m.Use("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	short := loc("s", 1, 0, ctx.WithTTL(2*time.Second))
	if _, err := m.Submit(short); err != nil {
		t.Fatal(err)
	}
	m.AdvanceTo(t0.Add(time.Minute))
	if _, err := m.Use("s"); !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v", err)
	}
}

func TestExpiryNotifiesStrategy(t *testing.T) {
	var expired []ctx.ID
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropBad(), WithHooks(Hooks{
		OnExpire: func(c *ctx.Context) { expired = append(expired, c.ID) },
	}))
	short := loc("s", 1, 0, ctx.WithTTL(2*time.Second))
	if _, err := m.Submit(short); err != nil {
		t.Fatal(err)
	}
	m.AdvanceTo(t0.Add(time.Minute))
	if len(expired) != 1 || expired[0] != "s" {
		t.Fatalf("expired = %v", expired)
	}
	if st := m.Stats(); st.Expired != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestUseLatest(t *testing.T) {
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropLatest())
	for _, c := range []*ctx.Context{loc("d1", 1, 0), loc("d2", 2, 1)} {
		if _, err := m.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.UseLatest(ctx.KindLocation, "peter")
	if err != nil || got.ID != "d2" {
		t.Fatalf("UseLatest = %v, %v", got, err)
	}
	if _, err := m.UseLatest(ctx.KindLocation, "alice"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.UseLatest(ctx.KindRFIDRead, ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestSituationsEvaluateOnDelivery(t *testing.T) {
	eng := situation.NewEngine()
	eng.MustRegister(&situation.Situation{
		Name: "peter-present",
		Formula: constraint.Exists("a", ctx.KindLocation,
			constraint.SubjectIs("a", "peter")),
	})
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropLatest(), WithSituations(eng))
	if _, err := m.Submit(loc("d1", 1, 0)); err != nil {
		t.Fatal(err)
	}
	// Not yet delivered: no activation.
	if evs := m.EvaluateSituations(); len(evs) != 0 {
		t.Fatalf("events = %v", evs)
	}
	if _, err := m.Use("d1"); err != nil {
		t.Fatal(err)
	}
	if !eng.Active("peter-present") {
		t.Fatal("situation not activated by delivery")
	}
	if st := m.Stats(); st.Situations != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestOnDetectHook(t *testing.T) {
	var detected []string
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropBad(), WithHooks(Hooks{
		OnDetect: func(v constraint.Violation) { detected = append(detected, v.Link.Key()) },
	}))
	for _, c := range scenarioA() {
		if _, err := m.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	if len(detected) != 2 || detected[0] != "d2|d3" || detected[1] != "d3|d4" {
		t.Fatalf("detected = %v", detected)
	}
}

func TestClockAdvancesMonotonically(t *testing.T) {
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropLatest())
	if _, err := m.Submit(loc("d2", 2, 1)); err != nil {
		t.Fatal(err)
	}
	high := m.Now()
	// An out-of-order older context must not move the clock backwards.
	if _, err := m.Submit(loc("d1", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if m.Now().Before(high) {
		t.Fatal("clock moved backwards")
	}
	m.AdvanceTo(t0) // backwards AdvanceTo is a no-op
	if m.Now().Before(high) {
		t.Fatal("AdvanceTo moved clock backwards")
	}
}

func TestConcurrentSubmitUse(t *testing.T) {
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropBad())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := string(rune('A' + g))
			for i := 1; i <= 50; i++ {
				c := ctx.NewLocation("p"+src, t0.Add(time.Duration(i)*time.Second),
					ctx.Point{X: float64(i)},
					ctx.WithSeq(uint64(i)), ctx.WithSource(src))
				if _, err := m.Submit(c); err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				if i%5 == 0 {
					_, _ = m.UseLatest(ctx.KindLocation, "p"+src)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := m.Stats(); st.Submitted != 200 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestSituationsDeactivateOnExpiry(t *testing.T) {
	eng := situation.NewEngine()
	eng.MustRegister(&situation.Situation{
		Name: "peter-present",
		Formula: constraint.Exists("a", ctx.KindLocation,
			constraint.SubjectIs("a", "peter")),
	})
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropLatest(), WithSituations(eng))
	short := loc("d1", 1, 0, ctx.WithTTL(5*time.Second))
	if _, err := m.Submit(short); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Use("d1"); err != nil {
		t.Fatal(err)
	}
	if !eng.Active("peter-present") {
		t.Fatal("not active after delivery")
	}
	// The delivered context expires; the situation must deactivate on the
	// next evaluation.
	m.AdvanceTo(t0.Add(time.Minute))
	m.EvaluateSituations()
	if eng.Active("peter-present") {
		t.Fatal("still active after expiry")
	}
}

func TestPoolCompactionDuringRun(t *testing.T) {
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropLatest())
	for i := 1; i <= 50; i++ {
		c := loc(string(rune('a'+i%26))+"-"+string(rune('0'+i/26)), uint64(i),
			float64(i), ctx.WithTTL(4*time.Second))
		c.ID = ctx.ID(c.ID) + ctx.NextID("x") // ensure uniqueness
		if _, err := m.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	m.AdvanceTo(t0.Add(time.Hour)) // everything expires
	removed := m.Pool().Compact()
	if removed == 0 {
		t.Fatal("nothing compacted")
	}
	if m.Pool().Len() != 0 {
		t.Fatalf("pool retains %d entries", m.Pool().Len())
	}
	// The middleware still works after compaction.
	fresh := ctx.NewLocation("peter", t0.Add(2*time.Hour), ctx.Point{X: 1},
		ctx.WithSeq(100), ctx.WithSource("tracker"))
	if _, err := m.Submit(fresh); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Use(fresh.ID); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitManyKindsMixed(t *testing.T) {
	// Location constraints must ignore other kinds entirely.
	m := New(velocityChecker(t, 2, 1.5), strategy.NewDropBad())
	for i := 1; i <= 20; i++ {
		locCtx := loc(string(rune('a'+i)), uint64(i), float64(i))
		if _, err := m.Submit(locCtx); err != nil {
			t.Fatal(err)
		}
		other := ctx.New(ctx.KindPresence, t0.Add(time.Duration(i)*time.Second),
			map[string]ctx.Value{"n": ctx.Int(int64(i))})
		if vios, err := m.Submit(other); err != nil || len(vios) != 0 {
			t.Fatalf("presence context: %v %v", vios, err)
		}
	}
	if st := m.Stats(); st.Detected != 0 {
		t.Fatalf("clean walk detected %d inconsistencies", st.Detected)
	}
}

// rogueStrategy returns discards for contexts the pool has never seen, to
// exercise the middleware's tolerance of misbehaving plug-ins.
type rogueStrategy struct{}

func (rogueStrategy) Name() string { return "ROGUE" }
func (rogueStrategy) OnAddition(c *ctx.Context, _ []constraint.Violation) strategy.Outcome {
	ghost := ctx.NewLocation("nobody", t0, ctx.Point{}, ctx.WithID("ghost-context"))
	return strategy.Outcome{Discard: []*ctx.Context{ghost, c}}
}
func (rogueStrategy) OnUse(*ctx.Context) (bool, strategy.Outcome) {
	return true, strategy.Outcome{}
}
func (rogueStrategy) OnExpire(*ctx.Context) {}
func (rogueStrategy) Reset()                {}

func TestMiddlewareToleratesRogueStrategy(t *testing.T) {
	m := New(velocityChecker(t, 1, 1.5), rogueStrategy{})
	c := loc("d1", 1, 0)
	if _, err := m.Submit(c); err != nil {
		t.Fatal(err)
	}
	// The unknown ghost discard is ignored; the known one lands.
	if st := m.Stats(); st.Discarded != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	if !m.Pool().Discarded("d1") {
		t.Fatal("submitted context not discarded")
	}
}

func TestDiscardReasonStrings(t *testing.T) {
	if ReasonOnAddition.String() != "on-addition" ||
		ReasonOnUse.String() != "on-use" ||
		DiscardReason(0).String() != "invalid" {
		t.Fatal("reason strings wrong")
	}
}
