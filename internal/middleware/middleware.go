// Package middleware implements the Cabot-style context-management
// middleware the paper's experiments run on: distributed context sources
// submit contexts; a consistency checker detects inconsistencies against
// registered constraints; a pluggable resolution strategy decides which
// contexts to discard; applications use contexts and evaluate situations
// over what was delivered.
//
// The engine is synchronous and deterministic: time is the logical time
// carried by context timestamps, and all randomness lives in the sources
// and strategies. Package internal/daemon layers the network serving path
// on top: remote sources and applications drive these same entry points
// over its line-delimited JSON protocol, and internal/source manages
// long-running in-process producers.
package middleware

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ctxres/internal/constraint"
	"ctxres/internal/ctx"
	"ctxres/internal/health"
	"ctxres/internal/pool"
	"ctxres/internal/situation"
	"ctxres/internal/strategy"
	"ctxres/internal/telemetry"
	"ctxres/internal/wal"
)

// Use errors.
var (
	ErrNotFound     = errors.New("context not found")
	ErrDiscarded    = errors.New("context was discarded")
	ErrExpired      = errors.New("context has expired")
	ErrInconsistent = errors.New("context judged inconsistent on use")
)

// DiscardReason explains why the middleware dropped a context.
type DiscardReason int

// Discard reasons.
const (
	ReasonOnAddition DiscardReason = iota + 1 // strategy discarded at addition time
	ReasonOnUse                               // strategy refused delivery at use time
)

// String names the reason.
func (r DiscardReason) String() string {
	switch r {
	case ReasonOnAddition:
		return "on-addition"
	case ReasonOnUse:
		return "on-use"
	default:
		return "invalid"
	}
}

// Hooks receive life-cycle notifications; any field may be nil. Hooks run
// under the middleware lock: they must be fast and must not call back into
// the middleware.
type Hooks struct {
	// OnAccept fires when a submitted context is admitted (either directly
	// consistent or buffered for checking).
	OnAccept func(c *ctx.Context)
	// OnDetect fires for each inconsistency a submission introduces.
	OnDetect func(v constraint.Violation)
	// OnDiscard fires when a context is discarded.
	OnDiscard func(c *ctx.Context, reason DiscardReason)
	// OnDeliver fires when a context is successfully used.
	OnDeliver func(c *ctx.Context)
	// OnExpire fires when a buffered context expires before use.
	OnExpire func(c *ctx.Context)
	// OnCheck fires after each parallel consistency check with its
	// work-distribution report (shards dispatched, bindings pruned). It
	// does not fire on the serial path.
	OnCheck func(rep constraint.CheckReport)
}

// Stats is a snapshot of middleware counters.
type Stats struct {
	Submitted  int `json:"submitted"`
	Detected   int `json:"detected"` // inconsistencies reported by the checker
	Discarded  int `json:"discarded"`
	Delivered  int `json:"delivered"` // successful uses
	Rejected   int `json:"rejected"`  // uses refused as inconsistent
	Expired    int `json:"expired"`
	Situations int `json:"situations"` // activation events

	// Parallel-checker counters (zero on the serial path).
	Shards         int `json:"shards"`         // shard tasks dispatched to the worker pool
	PrunedBindings int `json:"prunedBindings"` // candidate bindings skipped via the kind index

	// Compaction counters (see Compact).
	Compactions    int `json:"compactions"`    // Compact calls
	CompactRemoved int `json:"compactRemoved"` // entries dropped by compaction
}

// Middleware is the context-management engine. All public methods are safe
// for concurrent use; internally they serialize on one mutex, matching the
// paper's single resolution service.
type Middleware struct {
	mu         sync.Mutex
	checker    *constraint.Checker
	strat      strategy.Strategy
	pool       *pool.Pool
	situations *situation.Engine
	// situationHook observes every situation transition, replay included
	// (see WithSituationHook).
	situationHook func(situation.Event)
	hooks         Hooks
	checkOpts     CheckerOptions
	checkKinds    map[ctx.Kind]bool // cached checker.Kinds() for snapshot pruning
	clock         time.Time
	stats         Stats

	// Durability (see journal.go). jbuf collects the records one
	// operation produces; they are appended to the journal before the
	// lock is released. journalErr is the sticky write failure: once the
	// log cannot keep up, further state-changing operations are refused.
	journal    *wal.Journal
	jbuf       []wal.Record
	journalErr error

	// Observability (see telemetry.go). tel's zero value is "off" and
	// every instrument call no-ops. curSpan is the span of the operation
	// currently holding the lock, so journalCommitLocked — which runs as
	// a deferred step of that operation — can attach the journal stage.
	telReg  *telemetry.Registry
	telSink telemetry.SpanSink
	tel     pipelineTelemetry
	curSpan *telemetry.Span
	// prov receives one ResolutionEvent per resolved violation (see
	// WithProvenance); nil keeps provenance off.
	prov *telemetry.ProvenanceRing

	// Push delivery (see delta.go). deltaKinds accumulates the kinds an
	// in-flight operation touches; notifyDeltaLocked flushes them to the
	// hook after the operation's journal commit.
	deltaHook  DeltaHook
	deltaKinds map[ctx.Kind]bool

	// Overload resilience (see admission.go). pending counts Submit
	// operations in flight — the one holding the lock plus those queued
	// behind it — and is only maintained when admission control is
	// enabled. deferredQ holds degraded-mode acknowledgements awaiting
	// their consistency checks; replaying disables the admission gates
	// while Recover drives the public entry points.
	adm         AdmissionOptions
	wd          WatchdogOptions
	health      *health.Tracker
	pending     atomic.Int64
	res         resilienceCounters
	degraded    bool
	deferredQ   []deferredSubmit
	deferredIDs map[ctx.ID]bool
	replaying   bool
}

// CheckerOptions configures how the middleware invokes the consistency
// checker.
type CheckerOptions struct {
	// Parallelism is the worker count for the parallel binding evaluator.
	// Values <= 1 keep the default serial checker; values > 1 run each
	// submission's consistency check across that many workers over an
	// immutable kind-indexed snapshot of the checking buffer. Both paths
	// return byte-identical violations (see internal/constraint), so the
	// choice is purely a throughput knob. Use
	// constraint.DefaultParallelism() for a GOMAXPROCS-sized pool.
	Parallelism int
}

// Option configures the middleware.
type Option func(*Middleware)

// WithHooks installs life-cycle hooks.
func WithHooks(h Hooks) Option {
	return func(m *Middleware) { m.hooks = h }
}

// WithCheckerOptions configures checker invocation (e.g. opts in the
// parallel binding evaluator).
func WithCheckerOptions(o CheckerOptions) Option {
	return func(m *Middleware) { m.checkOpts = o }
}

// WithSituations installs a situation engine evaluated over the delivered
// view after every successful use.
func WithSituations(e *situation.Engine) Option {
	return func(m *Middleware) { m.situations = e }
}

// WithSituationHook installs a callback invoked (under the middleware
// lock — it must be fast and must not call back in) for every situation
// transition the engine emits, including transitions re-derived while
// Recover replays the journal. Recorders use it to compare pre-crash and
// recovered activation sequences event by event.
func WithSituationHook(h func(situation.Event)) Option {
	return func(m *Middleware) { m.situationHook = h }
}

// New builds a middleware around a checker and a resolution strategy.
func New(checker *constraint.Checker, strat strategy.Strategy, opts ...Option) *Middleware {
	m := &Middleware{
		checker: checker,
		strat:   strat,
		pool:    pool.New(),
	}
	for _, opt := range opts {
		opt(m)
	}
	m.tel = newPipelineTelemetry(m.telReg, m.telSink)
	return m
}

// Pool exposes the context repository (read-mostly access for apps/tests).
func (m *Middleware) Pool() *pool.Pool { return m.pool }

// Strategy returns the installed resolution strategy.
func (m *Middleware) Strategy() strategy.Strategy { return m.strat }

// Now returns the middleware's logical clock: the latest context timestamp
// seen so far.
func (m *Middleware) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.clock
}

// Submit processes a context addition change: the context is validated,
// expiry is swept, and — if any constraint is relevant to its kind — it is
// checked and the strategy consulted. It returns the inconsistencies the
// submission introduced. Submit is SubmitOpts with no deadline.
func (m *Middleware) Submit(c *ctx.Context) ([]constraint.Violation, error) {
	return m.SubmitOpts(c, SubmitOptions{})
}

// SubmitOpts is Submit with per-call admission options. When admission
// control, a health tracker, or a watchdog is configured (admission.go),
// the submission passes their gates first: a full pending queue or an
// expired client deadline sheds it with ErrOverloaded, a quarantined
// source drops it with ErrQuarantined, and in degraded mode it is
// acknowledged with its consistency check deferred.
func (m *Middleware) SubmitOpts(c *ctx.Context, so SubmitOptions) (vios []constraint.Violation, err error) {
	// The durability wait is deferred first so (LIFO) it runs after the
	// lock inside submitOne is released: under group commit, concurrent
	// submissions then coalesce into one fsync instead of serializing on
	// one fsync each.
	var wait commitWait
	defer m.commitDurable(&wait, &err)
	return m.submitAdmit(c, so, &wait)
}

// SubmitResult is one context's outcome within a SubmitBatch.
type SubmitResult struct {
	Violations []constraint.Violation
	Err        error
}

// SubmitBatch submits contexts in arrival order with per-item results,
// sharing a single durability wait: under group commit the whole batch
// rides one fsync instead of one per context (and under plain
// fsync-always each item still syncs inline, so semantics never weaken).
// Per-item admission, validation, and checking are identical to
// submitting each context alone. A durability failure fails the batch as
// a whole — once the log cannot acknowledge the records, the per-item
// results describe state a recovery may not reproduce.
func (m *Middleware) SubmitBatch(cs []*ctx.Context, so SubmitOptions) (results []SubmitResult, err error) {
	results = make([]SubmitResult, len(cs))
	var wait commitWait
	defer m.commitDurable(&wait, &err)
	for i, c := range cs {
		results[i].Violations, results[i].Err = m.submitAdmit(c, so, &wait)
	}
	return results, nil
}

// submitAdmit validates and admits one submission and runs its locked
// pipeline, accumulating the durability obligation into wait.
func (m *Middleware) submitAdmit(c *ctx.Context, so SubmitOptions, wait *commitWait) ([]constraint.Violation, error) {
	if c == nil {
		return nil, errors.New("submit: nil context")
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("submit: %w", err)
	}
	release, err := m.admit()
	if err != nil {
		return nil, fmt.Errorf("submit %s: %w", c.ID, err)
	}
	defer release()
	return m.submitOne(c, so, wait)
}

// submitOne is the under-lock portion of one submission.
func (m *Middleware) submitOne(c *ctx.Context, so SubmitOptions, wait *commitWait) (vios []constraint.Violation, err error) {
	opStart := m.tel.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	sp := m.tel.startSpan("submit", string(c.ID), opStart, so.Trace)
	m.curSpan = sp
	outcome := "accepted"
	// Registered before the journal-commit defer so that (LIFO) it runs
	// after the commit: the span then includes the journal_append stage.
	defer func() {
		if err != nil {
			outcome = submitErrOutcome(err)
		}
		m.tel.opDone("submit", opStart, sp, outcome)
		m.curSpan = nil
	}()
	defer m.notifyDeltaLocked()
	defer m.journalCommitLocked(&err, wait)
	if err := m.journalHealthLocked(); err != nil {
		return nil, err
	}
	if err := m.gateLocked(c, so); err != nil {
		return nil, err
	}
	if m.degraded {
		if err := m.deferSubmitLocked(c); err != nil {
			return nil, err
		}
		outcome = "deferred"
		return nil, nil
	}

	if c.Timestamp.After(m.clock) {
		m.clock = c.Timestamp
	}
	m.sweepLocked()
	vios, err = m.processSubmitLocked(c, sp, false)
	if err != nil {
		return nil, err
	}
	if len(vios) > 0 {
		outcome = "inconsistent"
	}
	return vios, nil
}

// processSubmitLocked runs the inline pipeline for one admitted context:
// pool insertion, consistency check, strategy resolution, accounting,
// hooks. The fallible stages (check, resolve — the ones a watchdog can
// abort) run before any counter or journal record is produced, so an
// abort unwinds via rollbackSubmitLocked without touching the log.
// deferred marks catch-up replays of degraded-mode submissions, whose
// submit accounting already happened at acknowledgement time.
func (m *Middleware) processSubmitLocked(c *ctx.Context, sp *telemetry.Span, deferred bool) ([]constraint.Violation, error) {
	relevant := m.checker.Relevant(c.Kind)
	if !relevant {
		// Part 1 fast path: irrelevant to every constraint — directly
		// consistent and immediately available.
		if err := c.SetState(ctx.Consistent); err != nil {
			return nil, fmt.Errorf("submit %s: %w", c.ID, err)
		}
	}
	if err := m.pool.Add(c); err != nil {
		return nil, fmt.Errorf("submit: %w", err)
	}
	m.deltaMark(c.Kind)
	var vios []constraint.Violation
	var out strategy.Outcome
	var resolveStart time.Time
	if relevant {
		checkStart := m.tel.now()
		var cerr error
		vios, cerr = m.checkGuardedLocked(c)
		m.tel.stageDone(sp, telemetry.StageCheck, checkStart)
		if cerr != nil {
			return nil, m.rollbackSubmitLocked(c, deferred, cerr)
		}
		resolveStart = m.tel.now()
		out, cerr = m.resolveAdditionLocked(c, vios)
		if cerr != nil {
			m.tel.stageDone(sp, telemetry.StageResolve, resolveStart)
			return nil, m.rollbackSubmitLocked(c, deferred, cerr)
		}
	}
	if !deferred {
		m.stats.Submitted++
		m.tel.submits.Inc()
		m.jAppend(wal.Record{Type: wal.RecordSubmit, Context: c})
	}
	if m.hooks.OnAccept != nil {
		m.hooks.OnAccept(c)
	}
	if relevant {
		m.stats.Detected += len(vios)
		m.tel.detected.Add(uint64(len(vios)))
		for _, v := range vios {
			m.tel.violations.With(v.Constraint).Inc()
		}
		if m.hooks.OnDetect != nil {
			for _, v := range vios {
				m.hooks.OnDetect(v)
			}
		}
	}
	m.observeHealthLocked(c, len(vios))
	if relevant {
		m.applyLocked(out, ReasonOnAddition)
		m.tel.stageDone(sp, telemetry.StageResolve, resolveStart)
		decision := "keep"
		if len(out.Discard) > 0 {
			decision = "discard"
		}
		m.tel.decisions.With(decision).Inc()
		if len(vios) > 0 {
			m.emitResolutionLocked(sp, vios, out.Discard)
		}
	}
	return vios, nil
}

// emitResolutionLocked records the provenance of one resolution: one
// ResolutionEvent per violation the strategy just resolved, appended to
// the provenance ring and — for the first violation — attached to the
// operation's span, so the resolve span itself names the constraint, the
// strategy, and the discarded contexts.
func (m *Middleware) emitResolutionLocked(sp *telemetry.Span, vios []constraint.Violation, discarded []*ctx.Context) {
	if m.prov == nil && sp == nil {
		return
	}
	var ids []string
	if len(discarded) > 0 {
		ids = make([]string, len(discarded))
		for i, d := range discarded {
			ids[i] = string(d.ID)
		}
	}
	for i, v := range vios {
		ev := telemetry.ResolutionEvent{
			Constraint: v.Constraint,
			Strategy:   m.strat.Name(),
			Discarded:  ids,
			Clock:      m.clock,
		}
		if sp != nil {
			ev.TraceID = sp.TraceID
		}
		bound := v.Link.Contexts()
		if len(bound) > 0 {
			ev.Violating = make([]string, len(bound))
			for j, c := range bound {
				ev.Violating[j] = string(c.ID)
			}
		}
		m.prov.Append(ev)
		if i == 0 && sp != nil {
			first := ev
			sp.Resolution = &first
		}
	}
}

// Use processes a context deletion change: the application asks to consume
// the identified context. On success the context is returned and counted
// as used; situations are re-evaluated over the delivered view.
func (m *Middleware) Use(id ctx.ID) (*ctx.Context, error) {
	return m.UseTrace(id, telemetry.TraceContext{})
}

// UseTrace is Use under a distributed trace context: the use's pipeline
// span joins the caller's trace.
func (m *Middleware) UseTrace(id ctx.ID, tr telemetry.TraceContext) (c *ctx.Context, err error) {
	opStart := m.tel.now()
	var wait commitWait
	defer m.commitDurable(&wait, &err)
	m.mu.Lock()
	defer m.mu.Unlock()
	sp := m.tel.startSpan("use", string(id), opStart, tr)
	m.curSpan = sp
	defer func() {
		m.tel.opDone("use", opStart, sp, useOutcome(err))
		m.curSpan = nil
	}()
	defer m.notifyDeltaLocked()
	defer m.journalCommitLocked(&err, &wait)
	if err := m.journalHealthLocked(); err != nil {
		return nil, err
	}
	if err := m.catchUpLocked(sp); err != nil {
		return nil, err
	}
	return m.useLocked(id)
}

// UseLatest finds the newest available context of the given kind and
// subject (empty subject matches any) and uses it. It returns ErrNotFound
// when nothing matches.
func (m *Middleware) UseLatest(kind ctx.Kind, subject string) (*ctx.Context, error) {
	return m.UseLatestTrace(kind, subject, telemetry.TraceContext{})
}

// UseLatestTrace is UseLatest under a distributed trace context.
func (m *Middleware) UseLatestTrace(kind ctx.Kind, subject string, tr telemetry.TraceContext) (c *ctx.Context, err error) {
	opStart := m.tel.now()
	var wait commitWait
	defer m.commitDurable(&wait, &err)
	m.mu.Lock()
	defer m.mu.Unlock()
	sp := m.tel.startSpan("use_latest", string(kind)+"/"+subject, opStart, tr)
	m.curSpan = sp
	defer func() {
		m.tel.opDone("use_latest", opStart, sp, useOutcome(err))
		m.curSpan = nil
	}()
	defer m.notifyDeltaLocked()
	defer m.journalCommitLocked(&err, &wait)
	if err := m.journalHealthLocked(); err != nil {
		return nil, err
	}
	if err := m.catchUpLocked(sp); err != nil {
		return nil, err
	}
	m.sweepLocked()
	for _, c := range m.pool.AvailableByKind(kind) { // newest first
		if subject != "" && c.Subject != subject {
			continue
		}
		return m.useLocked(c.ID)
	}
	return nil, fmt.Errorf("use latest %s/%s: %w", kind, subject, ErrNotFound)
}

func (m *Middleware) useLocked(id ctx.ID) (*ctx.Context, error) {
	m.sweepLocked()
	c, ok := m.pool.Get(id)
	if !ok {
		return nil, fmt.Errorf("use %s: %w", id, ErrNotFound)
	}
	if m.pool.Discarded(id) {
		return nil, fmt.Errorf("use %s: %w", id, ErrDiscarded)
	}
	if c.Expired(m.clock) {
		return nil, fmt.Errorf("use %s: %w", id, ErrExpired)
	}
	if m.pool.Used(id) {
		// Already consumed once: re-reads are free and do not re-enter the
		// resolution process.
		return c, nil
	}

	// The use reached the resolution process: journal it as a command.
	// Re-reads and the error returns above are read-only, so they need no
	// record; everything from here on is re-derived deterministically on
	// replay.
	m.jAppend(wal.Record{Type: wal.RecordUse, ID: id})

	resolveStart := m.tel.now()
	usable, out, rerr := m.resolveUseLocked(c)
	if rerr != nil {
		// The strategy panicked mid-use (watchdog containment): drop the
		// queued use record — the use never reached a decision, so replay
		// must not re-attempt it — and journal the abort instead.
		m.tel.stageDone(m.curSpan, telemetry.StageResolve, resolveStart)
		m.dropBufferedRecordLocked(wal.RecordUse, id)
		m.jAppend(wal.Record{Type: wal.RecordCheckFail, ID: id, Reason: rerr.Error()})
		m.res.checkPanics.Add(1)
		m.tel.checkAborts.With("panic").Inc()
		return nil, fmt.Errorf("use %s: %w", id, rerr)
	}
	m.applyLocked(out, ReasonOnUse)
	m.tel.stageDone(m.curSpan, telemetry.StageResolve, resolveStart)
	decision := "deliver"
	if !usable {
		decision = "reject"
	}
	m.tel.decisions.With(decision).Inc()
	if !usable {
		m.stats.Rejected++
		m.tel.rejected.Inc()
		return nil, fmt.Errorf("use %s: %w", id, ErrInconsistent)
	}
	if !c.State().Terminal() {
		if err := c.SetState(ctx.Consistent); err != nil {
			return nil, fmt.Errorf("use %s: %w", id, err)
		}
	}
	if err := m.pool.MarkUsed(id); err != nil {
		return nil, fmt.Errorf("use: %w", err)
	}
	m.stats.Delivered++
	m.tel.delivered.Inc()
	if m.hooks.OnDeliver != nil {
		m.hooks.OnDeliver(c)
	}
	m.evaluateSituationsLocked()
	return c, nil
}

// EvaluateSituations forces a situation evaluation over the delivered view
// (normally done automatically after each delivery) and returns the
// transitions.
func (m *Middleware) EvaluateSituations() []situation.Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evaluateSituationsLocked()
}

func (m *Middleware) evaluateSituationsLocked() []situation.Event {
	if m.situations == nil {
		return nil
	}
	u := constraint.NewSliceUniverse(m.pool.Delivered())
	events := m.situations.Evaluate(u, m.clock)
	for _, ev := range events {
		if ev.Type == situation.Activated {
			m.stats.Situations++
			m.tel.situations.Inc()
		}
		if m.situationHook != nil {
			m.situationHook(ev)
		}
	}
	return events
}

// AdvanceTo moves the logical clock forward (e.g. to expire contexts at
// the end of a run) and sweeps expiry. Moving backwards is a no-op.
func (m *Middleware) AdvanceTo(now time.Time) {
	var wait commitWait
	defer m.commitDurable(&wait, nil)
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.notifyDeltaLocked()
	defer m.journalCommitLocked(nil, &wait)
	// Deferred checks replay before the clock moves, so their recorded
	// sweep points stay behind it (and match the journal's record order).
	_ = m.catchUpLocked(nil)
	if now.After(m.clock) {
		m.clock = now
		t := now
		m.jAppend(wal.Record{Type: wal.RecordAdvance, Time: &t})
	}
	m.sweepLocked()
}

// Compact drops terminally discarded and expired entries from the pool,
// reclaiming memory on long-running daemons (counters and the delivered
// view are unaffected; see pool.Compact). It returns the number of entries
// removed.
func (m *Middleware) Compact() (removed int, err error) {
	opStart := m.tel.now()
	var wait commitWait
	defer m.commitDurable(&wait, &err)
	m.mu.Lock()
	defer m.mu.Unlock()
	sp := m.tel.startSpan("compact", "", opStart, telemetry.TraceContext{})
	m.curSpan = sp
	defer func() {
		outcome := "compacted"
		if err != nil {
			outcome = "error"
		}
		m.tel.opDone("compact", opStart, sp, outcome)
		m.curSpan = nil
	}()
	defer m.notifyDeltaLocked()
	defer m.journalCommitLocked(&err, &wait)
	if err := m.journalHealthLocked(); err != nil {
		return 0, err
	}
	if err := m.catchUpLocked(sp); err != nil {
		return 0, err
	}
	m.sweepLocked()
	removed = m.pool.Compact()
	m.stats.Compactions++
	m.stats.CompactRemoved += removed
	m.tel.compactions.Inc()
	m.tel.compactRemoved.Add(uint64(removed))
	m.jAppend(wal.Record{Type: wal.RecordCompact})
	return removed, nil
}

func (m *Middleware) sweepLocked() { m.sweepAtLocked(m.clock) }

// sweepAtLocked expires entries as of the given logical time. Ordinary
// operations sweep at the current clock; degraded-mode catch-up sweeps
// forward to each deferred submission's acknowledgement-time clock to
// replay the inline path's exact expiry sequence.
func (m *Middleware) sweepAtLocked(now time.Time) {
	for _, c := range m.pool.SweepExpired(now) {
		m.stats.Expired++
		m.tel.expired.Inc()
		m.deltaMark(c.Kind)
		m.jAppend(wal.Record{Type: wal.RecordExpire, ID: c.ID})
		m.strat.OnExpire(c)
		if m.health != nil {
			m.health.Observe(c.Source, health.Expired, now)
		}
		if m.hooks.OnExpire != nil {
			m.hooks.OnExpire(c)
		}
	}
}

func (m *Middleware) applyLocked(out strategy.Outcome, reason DiscardReason) {
	for _, d := range out.Discard {
		if m.pool.Discarded(d.ID) {
			continue
		}
		if err := m.pool.Discard(d.ID); err != nil {
			continue // context unknown to the pool (strategy-internal)
		}
		if !d.State().Terminal() {
			// Undecided or bad → inconsistent; both transitions are legal.
			_ = d.SetState(ctx.Inconsistent)
		}
		m.stats.Discarded++
		m.deltaMark(d.Kind)
		m.tel.discards.With(reason.String()).Inc()
		m.jAppend(wal.Record{Type: wal.RecordDiscard, ID: d.ID, Reason: reason.String()})
		if m.health != nil {
			// The strategy judged this context the culprit: score its
			// source with a bad mark.
			m.health.Observe(d.Source, health.Bad, m.clock)
		}
		if m.hooks.OnDiscard != nil {
			m.hooks.OnDiscard(d, reason)
		}
	}
}

// Stats returns a snapshot of the counters.
func (m *Middleware) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
