package middleware

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"ctxres/internal/ctx"
	"ctxres/internal/strategy"
	"ctxres/internal/wal"
)

// TestCrashRecoveryPropertyGroupCommit re-runs the crash-recovery
// property under group commit: the workload acknowledges each operation
// only after WaitDurable, the log dies at a random byte offset, and the
// recovered fingerprint must still be byte-identical to an uninterrupted
// run of some acknowledged prefix — the PR 3 durability contract is
// preserved verbatim by the coalesced-fsync path.
func TestCrashRecoveryPropertyGroupCommit(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			ops := genWalOps(seed)
			build := func() *Middleware {
				return New(velocityChecker(t, 2, 1.5), strategy.NewDropBad())
			}

			refDir := t.TempDir()
			ref := build()
			if err := ref.AttachJournal(openTestJournal(t, refDir)); err != nil {
				t.Fatal(err)
			}
			fingerprints := make([]string, 0, len(ops)+1)
			fingerprints = append(fingerprints, durableFingerprint(t, ref))
			for _, o := range ops {
				if err := applyWalOp(ref, o); err != nil {
					t.Fatalf("reference run: %v", err)
				}
				fingerprints = append(fingerprints, durableFingerprint(t, ref))
			}
			refBytes := ref.JournalStats().Bytes
			if err := ref.CloseJournal(); err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(seed * 104729))
			budget := 16 + rng.Int63n(refBytes*2)
			crashDir := t.TempDir()
			j, err := wal.Open(wal.Options{Dir: crashDir, GroupCommit: true,
				SegmentBytes: 1 << 12, OpenFile: crashOpenFile(&budget)})
			if err != nil {
				t.Fatal(err)
			}
			crashed := build()
			if err := crashed.AttachJournal(j); err != nil {
				t.Fatal(err)
			}
			applied := 0
			for _, o := range ops {
				if err := applyWalOp(crashed, o); err != nil {
					break
				}
				applied++
			}
			// Abandon without closing, like a real crash.

			m2, _, err := Recover(crashDir, build)
			if err != nil {
				t.Fatalf("recover after %d/%d ops: %v", applied, len(ops), err)
			}
			got := durableFingerprint(t, m2)
			ok := got == fingerprints[applied]
			if !ok && applied+1 < len(fingerprints) {
				ok = got == fingerprints[applied+1]
			}
			if !ok {
				t.Fatalf("recovered state after %d/%d ops matches neither adjacent prefix:\n%s",
					applied, len(ops), got)
			}

			rep, err := wal.Verify(crashDir)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() {
				t.Fatalf("post-recovery verify not clean: %+v", rep)
			}

			// The recovered instance resumes journaling in group-commit mode.
			j2, err := wal.Open(wal.Options{Dir: crashDir, GroupCommit: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := m2.AttachJournal(j2); err != nil {
				t.Fatal(err)
			}
			if _, err := m2.Submit(loc(fmt.Sprintf("resume%d", seed), 10_000, 0)); err != nil {
				t.Fatalf("resume after recovery: %v", err)
			}
			if err := m2.CloseJournal(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// cacheFile models the page cache under a crash: writes land in an
// in-memory buffer, Sync flushes the buffer to the real file and fsyncs
// it, and a crash (crashFlush) persists only a scripted prefix of the
// unsynced tail — so data a group commit never acknowledged genuinely
// disappears, torn mid-frame when the prefix says so. A write budget
// injects the crash point. It is concurrency-safe because group-commit
// leaders Sync outside the journal lock, concurrently with appends.
type cacheFile struct {
	mu     sync.Mutex
	f      *os.File
	buf    []byte
	budget *int64
	dead   bool
}

func (b *cacheFile) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead || *b.budget <= 0 {
		b.dead = true
		return 0, errCrash
	}
	n := int64(len(p))
	if n > *b.budget {
		allowed := int(*b.budget)
		b.buf = append(b.buf, p[:allowed]...)
		*b.budget = 0
		b.dead = true
		return allowed, errCrash
	}
	*b.budget -= n
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *cacheFile) Sync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead {
		return errCrash
	}
	if len(b.buf) > 0 {
		if _, err := b.f.Write(b.buf); err != nil {
			return err
		}
		b.buf = b.buf[:0]
	}
	return b.f.Sync()
}

func (b *cacheFile) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.f.Close()
}

// crashFlush simulates the kernel having written part of the cached tail
// before the crash: frac of the unsynced buffer reaches the file, the
// rest is lost.
func (b *cacheFile) crashFlush(frac float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := int(float64(len(b.buf)) * frac)
	if n > 0 {
		_, _ = b.f.Write(b.buf[:n])
	}
	b.buf = nil
	b.dead = true
}

// TestGroupCommitOnlyAckedSurvive is the concurrent half of the group-
// commit crash property: many sources submit in parallel against a
// coalescing journal whose cache dies mid-batch at a random byte budget.
// After recovery, every fsync-acknowledged submission must be present,
// everything recovered must have been submitted (no invented state), and
// the directory must verify clean after torn-tail truncation.
func TestGroupCommitOnlyAckedSurvive(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed * 6271))
			budget := 512 + rng.Int63n(64<<10)
			frac := rng.Float64()
			dir := t.TempDir()

			var files []*cacheFile
			var filesMu sync.Mutex
			j, err := wal.Open(wal.Options{
				Dir:         dir,
				GroupCommit: true,
				CommitDelay: 200 * time.Microsecond,
				CommitBatch: 8,
				OpenFile: func(name string) (wal.File, error) {
					f, err := os.Create(name)
					if err != nil {
						return nil, err
					}
					cf := &cacheFile{f: f, budget: &budget}
					filesMu.Lock()
					files = append(files, cf)
					filesMu.Unlock()
					return cf, nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			build := func() *Middleware {
				return New(velocityChecker(t, 2, 1.5), strategy.NewDropBad())
			}
			m := build()
			if err := m.AttachJournal(j); err != nil {
				t.Fatal(err)
			}

			const workers, perWorker = 6, 40
			acked := make([][]ctx.ID, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					subject := fmt.Sprintf("src%d", w)
					for i := 0; i < perWorker; i++ {
						id := ctx.ID(fmt.Sprintf("g%d-%d", w, i))
						c := ctx.NewLocation(subject, t0.Add(time.Duration(i)*time.Second),
							ctx.Point{X: float64(i)},
							ctx.WithID(id), ctx.WithSeq(uint64(i+1)),
							ctx.WithSource(subject))
						if _, err := m.Submit(c); err != nil {
							return // journal died; nothing later is acknowledged
						}
						acked[w] = append(acked[w], id)
					}
				}(w)
			}
			wg.Wait()
			// Crash: part of the unsynced cache reaches the disk, torn
			// wherever the fraction lands.
			filesMu.Lock()
			for _, cf := range files {
				cf.crashFlush(frac)
			}
			filesMu.Unlock()

			m2, _, err := Recover(dir, build)
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			pool := m2.Pool()
			survivors := 0
			for w := range acked {
				for _, id := range acked[w] {
					if _, ok := pool.Get(id); !ok {
						t.Fatalf("acknowledged submission %s lost by recovery", id)
					}
					survivors++
				}
			}
			// No invented state: everything recovered was submitted by a
			// worker with its deterministic ID scheme.
			snap := pool.Snapshot()
			for _, e := range snap.Entries {
				id := e.Context.ID
				var w, i int
				if _, err := fmt.Sscanf(string(id), "g%d-%d", &w, &i); err != nil {
					t.Fatalf("recovered unknown context %s", id)
				}
				if w < 0 || w >= workers || i < 0 || i >= perWorker {
					t.Fatalf("recovered out-of-range context %s", id)
				}
			}

			rep, err := wal.Verify(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() {
				t.Fatalf("post-recovery verify not clean: %+v", rep)
			}
			t.Logf("seed %d: %d acked survived, %d recovered total, budget=%d frac=%.2f",
				seed, survivors, len(snap.Entries), budget, frac)
		})
	}
}

// TestGroupCommitDurabilityFailureFailsStop pins the middleware-level
// contract: when the shared fsync fails, the submission that waited on it
// reports the failure and the middleware fail-stops, exactly like an
// append failure under the inline-fsync path.
func TestGroupCommitDurabilityFailureFailsStop(t *testing.T) {
	dir := t.TempDir()
	var failNext bool
	var mu sync.Mutex
	j, err := wal.Open(wal.Options{
		Dir:         dir,
		GroupCommit: true,
		OpenFile: func(name string) (wal.File, error) {
			f, err := os.Create(name)
			if err != nil {
				return nil, err
			}
			return &failableSyncFile{f: f, failNext: &failNext, mu: &mu}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropBad(), WithJournal(j))
	if _, err := m.Submit(loc("ok", 1, 0)); err != nil {
		t.Fatalf("healthy submit: %v", err)
	}
	mu.Lock()
	failNext = true
	mu.Unlock()
	if _, err := m.Submit(loc("doomed", 2, 0)); err == nil {
		t.Fatal("submit acknowledged over a failed group fsync")
	}
	// Sticky: later operations are refused too.
	if _, err := m.Submit(loc("late", 3, 0)); err == nil {
		t.Fatal("submit succeeded after durability failure")
	}
}

type failableSyncFile struct {
	f        *os.File
	mu       *sync.Mutex
	failNext *bool
}

func (s *failableSyncFile) Write(p []byte) (int, error) { return s.f.Write(p) }

func (s *failableSyncFile) Sync() error {
	s.mu.Lock()
	fail := *s.failNext
	s.mu.Unlock()
	if fail {
		return errCrash
	}
	return s.f.Sync()
}

func (s *failableSyncFile) Close() error { return s.f.Close() }

// TestSubmitBatchSharesCommit pins the batch API: per-item results match
// item-by-item submission, and the whole batch rides a bounded number of
// fsyncs rather than one per record.
func TestSubmitBatchSharesCommit(t *testing.T) {
	dir := t.TempDir()
	j, err := wal.Open(wal.Options{Dir: dir, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropBad(), WithJournal(j))

	cs := make([]*ctx.Context, 0, 20)
	for i := 0; i < 20; i++ {
		cs = append(cs, loc(fmt.Sprintf("b%d", i), uint64(i+1), float64(i%3)))
	}
	// A duplicate mid-batch must fail alone, not the batch.
	cs[7] = loc("b3", 4, 0)

	results, err := m.SubmitBatch(cs, SubmitOptions{})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(results) != len(cs) {
		t.Fatalf("results = %d, want %d", len(results), len(cs))
	}
	for i, r := range results {
		if i == 7 {
			if r.Err == nil {
				t.Fatal("duplicate item succeeded")
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
	st := m.JournalStats()
	if st.Records < 19 {
		t.Fatalf("journaled %d records, want >= 19", st.Records)
	}
	if st.Fsyncs >= st.Records {
		t.Fatalf("fsyncs = %d for %d records: batch did not share commits",
			st.Fsyncs, st.Records)
	}

	// Recovery sees exactly the batch's accepted items.
	if err := m.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	m2, _, err := Recover(dir, func() *Middleware {
		return New(velocityChecker(t, 1, 1.5), strategy.NewDropBad())
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := durableFingerprint(t, m2), durableFingerprint(t, m); got != want {
		t.Fatalf("recovered batch state diverges:\n got %s\nwant %s", got, want)
	}
}
