package middleware

import (
	"errors"
	"time"

	"ctxres/internal/telemetry"
	"ctxres/internal/wal"
)

// WithTelemetry exports pipeline counters and stage-latency histograms
// into reg. The counters are incremented at exactly the code points that
// update Stats, so a /metrics scrape and the stats op always agree. A nil
// registry leaves telemetry disabled (the default) at zero cost per
// operation.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(m *Middleware) { m.telReg = reg }
}

// WithSpanSink records one telemetry.Span per pipeline operation
// (submit, use, use_latest, compact) with per-stage timings. Span
// recording is independent of WithTelemetry: either, both, or neither
// may be configured.
func WithSpanSink(sink telemetry.SpanSink) Option {
	return func(m *Middleware) { m.telSink = sink }
}

// WithProvenance installs a bounded resolution-provenance ring: every
// constraint violation the strategy resolves appends a
// telemetry.ResolutionEvent (constraint, strategy, violating binding,
// discarded contexts, logical clock, trace ID) that stays queryable
// after the fact via the daemon's provenance op and /statusz. A nil ring
// leaves provenance off at zero cost.
func WithProvenance(ring *telemetry.ProvenanceRing) Option {
	return func(m *Middleware) { m.prov = ring }
}

// pipelineTelemetry bundles the middleware's instruments. The zero value
// is "telemetry off": every instrument is nil and all methods no-op, so
// instrumented code calls them unconditionally. Only the clock reads are
// gated (on), keeping the disabled path free of time.Now syscalls.
type pipelineTelemetry struct {
	on   bool
	sink telemetry.SpanSink

	submits        *telemetry.Counter
	detected       *telemetry.Counter
	delivered      *telemetry.Counter
	rejected       *telemetry.Counter
	expired        *telemetry.Counter
	situations     *telemetry.Counter
	shards         *telemetry.Counter
	pruned         *telemetry.Counter
	compactions    *telemetry.Counter
	compactRemoved *telemetry.Counter

	discards   *telemetry.CounterVec // by discard reason
	violations *telemetry.CounterVec // by constraint name
	decisions  *telemetry.CounterVec // by strategy decision

	// Overload-resilience instruments (see admission.go).
	deferredChecks *telemetry.Counter
	catchups       *telemetry.Counter
	degraded       *telemetry.Gauge
	shed           *telemetry.CounterVec // by shed cause: queue, deadline
	checkAborts    *telemetry.CounterVec // by watchdog abort cause: timeout, panic

	stages *telemetry.HistogramVec // per pipeline stage
	ops    *telemetry.HistogramVec // per middleware entry point
}

func newPipelineTelemetry(reg *telemetry.Registry, sink telemetry.SpanSink) pipelineTelemetry {
	t := pipelineTelemetry{on: reg != nil || sink != nil, sink: sink}
	if reg == nil {
		return t
	}
	t.submits = reg.Counter("ctxres_submits_total", "Contexts admitted by Submit.")
	t.detected = reg.Counter("ctxres_detected_total", "Inconsistencies reported by the checker.")
	t.delivered = reg.Counter("ctxres_delivered_total", "Contexts successfully delivered to applications.")
	t.rejected = reg.Counter("ctxres_rejected_total", "Uses refused as inconsistent.")
	t.expired = reg.Counter("ctxres_expired_total", "Buffered contexts expired before use.")
	t.situations = reg.Counter("ctxres_situations_total", "Situation activation events.")
	t.shards = reg.Counter("ctxres_check_shards_total", "Shard tasks dispatched by the parallel checker.")
	t.pruned = reg.Counter("ctxres_check_pruned_bindings_total", "Candidate bindings skipped via the kind index.")
	t.compactions = reg.Counter("ctxres_compactions_total", "Compact calls.")
	t.compactRemoved = reg.Counter("ctxres_compact_removed_total", "Pool entries dropped by compaction.")
	t.deferredChecks = reg.Counter("ctxres_deferred_checks_total", "Submissions acknowledged with their consistency check deferred (degraded mode).")
	t.catchups = reg.Counter("ctxres_catchups_total", "Degraded-mode catch-up batches replayed.")
	t.degraded = reg.Gauge("ctxres_degraded_mode", "1 while consistency checking is deferred under load.")
	t.shed = reg.CounterVec("ctxres_overload_shed_total", "Submissions shed by admission control.", "cause")
	t.checkAborts = reg.CounterVec("ctxres_check_aborts_total", "Pipeline stages aborted by the check watchdog.", "cause")
	t.discards = reg.CounterVec("ctxres_discards_total", "Contexts discarded by the resolution strategy.", "reason")
	t.violations = reg.CounterVec("ctxres_violations_total", "Detected violations by constraint.", "constraint")
	t.decisions = reg.CounterVec("ctxres_strategy_decisions_total", "Resolution strategy consultations by decision.", "decision")
	t.stages = reg.HistogramVec("ctxres_stage_seconds", "Pipeline stage latency.", "stage", nil)
	t.ops = reg.HistogramVec("ctxres_op_seconds", "Middleware operation latency end to end.", "op", nil)
	return t
}

// now reads the wall clock when telemetry is on, and returns the zero
// time otherwise; the zero time makes every downstream *Done call a
// no-op.
func (t *pipelineTelemetry) now() time.Time {
	if !t.on {
		return time.Time{}
	}
	return time.Now()
}

// stageDone observes one completed pipeline stage on the stage histogram
// and, when a span is being recorded, on the span. Stages of a sampled
// trace attach the trace ID as the histogram bucket's exemplar, so a p99
// ctxres_stage_seconds bucket on /metrics links to a concrete trace.
func (t *pipelineTelemetry) stageDone(sp *telemetry.Span, stage telemetry.Stage, start time.Time) {
	if start.IsZero() {
		return
	}
	d := time.Since(start)
	if sp != nil && sp.TraceID != "" {
		t.stages.With(string(stage)).ObserveDurationExemplar(d, sp.TraceID)
	} else {
		t.stages.With(string(stage)).ObserveDuration(d)
	}
	sp.AddStage(stage, d)
}

// startSpan opens a span for one operation when a sink is installed.
// When the operation arrived under a sampled trace, the span joins it:
// same trace ID, the caller's span as parent, a fresh 64-bit span ID of
// its own. Without a sink there is nowhere to record spans, so tracing
// is off regardless of tr (the daemon's hello negotiation never offers
// tracing in that case).
func (t *pipelineTelemetry) startSpan(op, id string, start time.Time, tr telemetry.TraceContext) *telemetry.Span {
	if t.sink == nil {
		return nil
	}
	sp := &telemetry.Span{Op: op, ID: id, Start: start}
	if tr.Sampled() {
		sp.TraceID = tr.TraceID
		sp.ParentID = tr.SpanID
		sp.SpanID = telemetry.NewSpanID()
	}
	return sp
}

// opDone observes the operation's end-to-end latency and emits its span.
func (t *pipelineTelemetry) opDone(op string, start time.Time, sp *telemetry.Span, outcome string) {
	if start.IsZero() {
		return
	}
	d := time.Since(start)
	t.ops.With(op).ObserveDuration(d)
	if sp != nil {
		sp.Outcome = outcome
		sp.Seconds = d.Seconds()
		t.sink.RecordSpan(sp)
	}
}

// useOutcome maps a use error to its span outcome label.
func useOutcome(err error) string {
	switch {
	case err == nil:
		return "delivered"
	case errors.Is(err, ErrInconsistent):
		return "rejected"
	case errors.Is(err, ErrNotFound):
		return "not-found"
	case errors.Is(err, ErrDiscarded):
		return "discarded"
	case errors.Is(err, ErrExpired):
		return "expired"
	default:
		return "error"
	}
}

// JournalErr reports the sticky journal write failure, or nil while the
// journal is healthy (or absent). The daemon's /healthz endpoint reads
// it to flip the process unhealthy once the middleware has fail-stopped.
func (m *Middleware) JournalErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.journalErr
}

// SigmaSize reports the resolution strategy's internal buffer size (the
// tracked inconsistency set Σ for drop-bad), or 0 for strategies without
// one. It takes the middleware lock because strategies are not safe for
// concurrent use; scrape-time gauge callbacks route through it.
func (m *Middleware) SigmaSize() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.strat.(interface{ SigmaSize() int }); ok {
		return s.SigmaSize()
	}
	return 0
}

// NewWALObserver builds a wal.Observer exporting journal timings into
// reg: append and fsync latency histograms, snapshot write latency, and
// rotation/byte counters. It lives here rather than in internal/wal so
// the log layer stays free of telemetry dependencies; wire it into
// wal.Options.Observer when opening the journal. A nil registry returns
// the zero observer (all callbacks absent).
func NewWALObserver(reg *telemetry.Registry) wal.Observer {
	if reg == nil {
		return wal.Observer{}
	}
	appendH := reg.Histogram("ctxres_wal_append_seconds", "WAL record append write latency.", nil)
	fsyncH := reg.Histogram("ctxres_wal_fsync_seconds", "WAL fsync latency.", nil)
	snapH := reg.Histogram("ctxres_wal_snapshot_seconds", "WAL snapshot write latency.", nil)
	rotations := reg.Counter("ctxres_wal_rotations_total", "WAL segment rotations.")
	appended := reg.Counter("ctxres_wal_appended_bytes_total", "Bytes appended to the WAL.")
	return wal.Observer{
		Append: func(bytes int, d time.Duration) {
			appendH.ObserveDuration(d)
			appended.Add(uint64(bytes))
		},
		Fsync:    func(d time.Duration) { fsyncH.ObserveDuration(d) },
		Snapshot: func(d time.Duration) { snapH.ObserveDuration(d) },
		Rotate:   func() { rotations.Inc() },
	}
}
