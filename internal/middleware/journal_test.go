package middleware

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"ctxres/internal/ctx"
	"ctxres/internal/situation"
	"ctxres/internal/strategy"
	"ctxres/internal/wal"
)

// durableFingerprint serializes the full durable state — pool, clock,
// strategy buffer, counters — exactly as a snapshot would, so two
// middlewares can be compared byte for byte.
func durableFingerprint(tb testing.TB, m *Middleware) string {
	tb.Helper()
	fp, err := m.Fingerprint()
	if err != nil {
		tb.Fatal(err)
	}
	return fp
}

func openTestJournal(tb testing.TB, dir string) *wal.Journal {
	tb.Helper()
	j, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNever})
	if err != nil {
		tb.Fatal(err)
	}
	return j
}

func TestJournalRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropBad(),
		WithJournal(openTestJournal(t, dir)))
	for _, c := range scenarioA() {
		if _, err := m.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []ctx.ID{"d3", "d1", "d5"} {
		_, _ = m.Use(id) // rejections are part of the journaled history
	}
	m.AdvanceTo(t0.Add(time.Hour))
	if _, err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	want := durableFingerprint(t, m)
	wantStats := m.Stats()
	if err := m.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	m2, rep, err := Recover(dir, func() *Middleware {
		return New(velocityChecker(t, 1, 1.5), strategy.NewDropBad())
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := durableFingerprint(t, m2); got != want {
		t.Fatalf("recovered state diverges:\n got %s\nwant %s", got, want)
	}
	if got := m2.Stats(); got != wantStats {
		t.Fatalf("recovered stats = %+v, want %+v", got, wantStats)
	}
	if rep.Commands == 0 {
		t.Fatalf("report = %+v, want replayed commands", rep)
	}
	// CloseJournal appended a final stats annotation; replay verified it.
	if rep.StatsChecked == 0 {
		t.Fatalf("report = %+v, want stats cross-check", rep)
	}

	// The recovered instance keeps journaling.
	j2 := openTestJournal(t, dir)
	if err := m2.AttachJournal(j2); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Submit(loc("post", 100, 0)); err != nil {
		t.Fatal(err)
	}
	if err := m2.CloseJournal(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropBad(),
		WithJournal(openTestJournal(t, dir)))
	for _, c := range scenarioA() {
		if _, err := m.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Use("d1"); err != nil {
		t.Fatal(err)
	}
	want := durableFingerprint(t, m)
	// Abandon without closing: a kill, not a shutdown. The bytes are in the
	// files; only the final stats record is missing.

	m2, rep, err := Recover(dir, func() *Middleware {
		return New(velocityChecker(t, 1, 1.5), strategy.NewDropBad())
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SnapshotSeq == 0 || rep.SnapshotPath == "" {
		t.Fatalf("report = %+v, want recovery from a snapshot", rep)
	}
	// Only the post-checkpoint suffix replays: the stats annotation plus
	// the use command (and its derived annotations).
	if rep.Commands != 1 {
		t.Fatalf("replayed %d commands, want 1 (suffix after snapshot)", rep.Commands)
	}
	if got := durableFingerprint(t, m2); got != want {
		t.Fatalf("recovered state diverges:\n got %s\nwant %s", got, want)
	}
}

func TestRecoverEmptyDirIsFresh(t *testing.T) {
	m, rep, err := Recover(t.TempDir(), func() *Middleware {
		return New(velocityChecker(t, 1, 1.5), strategy.NewDropBad())
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Commands != 0 || rep.SnapshotPath != "" {
		t.Fatalf("report = %+v, want empty", rep)
	}
	if m.Stats() != (Stats{}) {
		t.Fatalf("stats = %+v, want zero", m.Stats())
	}
}

func TestRecoverStrategyMismatchFails(t *testing.T) {
	dir := t.TempDir()
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropBad(),
		WithJournal(openTestJournal(t, dir)))
	if _, err := m.Submit(loc("a", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	_, _, err := Recover(dir, func() *Middleware {
		return New(velocityChecker(t, 1, 1.5), strategy.NewDropLatest())
	})
	if err == nil {
		t.Fatal("recovery under a different strategy accepted")
	}
}

// crashFile fails once a shared byte budget runs out, tearing the write
// mid-frame like a power cut would.
type crashFile struct {
	f      *os.File
	budget *int64
}

var errCrash = errors.New("injected crash")

func (b *crashFile) Write(p []byte) (int, error) {
	if *b.budget <= 0 {
		return 0, errCrash
	}
	if int64(len(p)) > *b.budget {
		n, _ := b.f.Write(p[:*b.budget])
		*b.budget = 0
		return n, errCrash
	}
	*b.budget -= int64(len(p))
	return b.f.Write(p)
}

func (b *crashFile) Sync() error  { return b.f.Sync() }
func (b *crashFile) Close() error { return b.f.Close() }

func crashOpenFile(budget *int64) func(string) (wal.File, error) {
	return func(name string) (wal.File, error) {
		f, err := os.Create(name)
		if err != nil {
			return nil, err
		}
		return &crashFile{f: f, budget: budget}, nil
	}
}

func TestJournalFailureFailsStop(t *testing.T) {
	budget := int64(600)
	j, err := wal.Open(wal.Options{Dir: t.TempDir(), Fsync: wal.FsyncNever,
		OpenFile: crashOpenFile(&budget)})
	if err != nil {
		t.Fatal(err)
	}
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropBad(), WithJournal(j))
	var failed error
	for i := 1; i <= 100; i++ {
		if _, err := m.Submit(loc(fmt.Sprintf("c%d", i), uint64(i), 0)); err != nil {
			failed = err
			break
		}
	}
	if !errors.Is(failed, errCrash) {
		t.Fatalf("submit loop error = %v, want injected crash", failed)
	}
	// Fail-stop: every later state-changing operation is refused.
	if _, err := m.Submit(loc("late", 200, 0)); !errors.Is(err, errCrash) {
		t.Fatalf("submit after failure = %v, want sticky crash error", err)
	}
	if _, err := m.Use("c1"); !errors.Is(err, errCrash) {
		t.Fatalf("use after failure = %v, want sticky crash error", err)
	}
	if _, err := m.Compact(); !errors.Is(err, errCrash) {
		t.Fatalf("compact after failure = %v, want sticky crash error", err)
	}
	if err := m.Checkpoint(); !errors.Is(err, errCrash) {
		t.Fatalf("checkpoint after failure = %v, want sticky crash error", err)
	}
	_ = m.CloseJournal()
	// Detached, the middleware serves again (degraded, not durable).
	if _, err := m.Submit(loc("late", 200, 0)); err != nil {
		t.Fatalf("submit after detach: %v", err)
	}
}

// walOp is one deterministic workload step, stored as data so the same
// workload can be re-applied to fresh middleware instances.
type walOp struct {
	kind string // submit, use, advance, compact, checkpoint
	id   string
	seq  uint64
	x    float64
	ttl  time.Duration
	at   time.Time
}

func genWalOps(seed int64) []walOp {
	rng := rand.New(rand.NewSource(seed))
	n := 40 + rng.Intn(40)
	ops := make([]walOp, 0, n)
	var submitted []string
	seq := uint64(0)
	for i := 0; i < n; i++ {
		r := rng.Float64()
		switch {
		case r < 0.55 || len(submitted) == 0:
			seq++
			id := fmt.Sprintf("w%d", seq)
			var ttl time.Duration
			if rng.Float64() < 0.3 {
				ttl = time.Duration(3+rng.Intn(15)) * time.Second
			}
			ops = append(ops, walOp{kind: "submit", id: id, seq: seq,
				x: float64(rng.Intn(12)), ttl: ttl})
			submitted = append(submitted, id)
		case r < 0.85:
			ops = append(ops, walOp{kind: "use", id: submitted[rng.Intn(len(submitted))]})
		case r < 0.92:
			seq += uint64(1 + rng.Intn(5))
			ops = append(ops, walOp{kind: "advance", at: t0.Add(time.Duration(seq) * time.Second)})
		case r < 0.97:
			ops = append(ops, walOp{kind: "compact"})
		default:
			ops = append(ops, walOp{kind: "checkpoint"})
		}
	}
	return ops
}

// applyWalOp runs one step. Application-level rejections (inconsistent on
// use, expired, and so on) are deterministic parts of the history, not
// failures; only journal trouble comes back as an error.
func applyWalOp(m *Middleware, o walOp) error {
	var err error
	switch o.kind {
	case "submit":
		opts := []ctx.Option{ctx.WithID(ctx.ID(o.id)), ctx.WithSeq(o.seq), ctx.WithSource("s")}
		if o.ttl > 0 {
			opts = append(opts, ctx.WithTTL(o.ttl))
		}
		c := ctx.NewLocation("peter", t0.Add(time.Duration(o.seq)*time.Second),
			ctx.Point{X: o.x}, opts...)
		_, err = m.Submit(c)
	case "use":
		_, err = m.Use(ctx.ID(o.id))
	case "advance":
		m.AdvanceTo(o.at)
		m.mu.Lock()
		err = m.journalErr
		m.mu.Unlock()
	case "compact":
		_, err = m.Compact()
	case "checkpoint":
		if m.journal == nil {
			return nil
		}
		err = m.Checkpoint()
	}
	if err != nil && errors.Is(err, errCrash) {
		return err
	}
	return nil
}

// TestCrashRecoveryProperty is the crash-recovery property test: for each
// seed, a workload runs against a journal that dies at a random byte
// offset; recovery from the surviving files must land on a state byte-
// identical to an uninterrupted run of some acknowledged prefix, and the
// directory must verify clean after the torn tail is truncated.
func TestCrashRecoveryProperty(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			ops := genWalOps(seed)
			// Every middleware carries a situation engine and records the
			// transition events it emits, so recovery can be checked to
			// regenerate the exact activation sequence, not just the final
			// state.
			build := func(rec *[]string) func() *Middleware {
				return func() *Middleware {
					return New(velocityChecker(t, 2, 1.5), strategy.NewDropBad(),
						WithSituations(presenceEngine()),
						WithSituationHook(func(ev situation.Event) {
							*rec = append(*rec, ev.String())
						}))
				}
			}

			// Reference run, fault-free: fingerprints[i] is the durable
			// state after i ops, evCounts[i] the events emitted by then.
			refDir := t.TempDir()
			var refEvents []string
			ref := build(&refEvents)()
			if err := ref.AttachJournal(openTestJournal(t, refDir)); err != nil {
				t.Fatal(err)
			}
			fingerprints := make([]string, 0, len(ops)+1)
			fingerprints = append(fingerprints, durableFingerprint(t, ref))
			evCounts := make([]int, 0, len(ops)+1)
			evCounts = append(evCounts, 0)
			for _, o := range ops {
				if err := applyWalOp(ref, o); err != nil {
					t.Fatalf("reference run: %v", err)
				}
				fingerprints = append(fingerprints, durableFingerprint(t, ref))
				evCounts = append(evCounts, len(refEvents))
			}
			refBytes := ref.JournalStats().Bytes
			if err := ref.CloseJournal(); err != nil {
				t.Fatal(err)
			}

			// Crashed run: the log dies somewhere inside the byte stream the
			// reference produced (sometimes never, exercising clean ends).
			rng := rand.New(rand.NewSource(seed * 7919))
			budget := 16 + rng.Int63n(refBytes*2)
			crashDir := t.TempDir()
			j, err := wal.Open(wal.Options{Dir: crashDir, Fsync: wal.FsyncNever,
				SegmentBytes: 1 << 12, OpenFile: crashOpenFile(&budget)})
			if err != nil {
				t.Fatal(err)
			}
			var crashEvents []string
			crashed := build(&crashEvents)()
			if err := crashed.AttachJournal(j); err != nil {
				t.Fatal(err)
			}
			applied := 0
			for _, o := range ops {
				if err := applyWalOp(crashed, o); err != nil {
					break // crashed mid-op
				}
				applied++
			}
			// Abandon without closing, like a real crash.

			var replayEvents []string
			m2, _, err := Recover(crashDir, build(&replayEvents))
			if err != nil {
				t.Fatalf("recover after %d/%d ops: %v", applied, len(ops), err)
			}
			got := durableFingerprint(t, m2)
			// The replayed situation events must be a byte-identical
			// contiguous suffix of the reference run's event log as of the
			// recovered prefix: recovery regenerates exactly the
			// post-snapshot transitions, never spurious ones.
			eventsAlign := func(idx int) bool {
				if idx >= len(evCounts) {
					return false
				}
				cnt, n := evCounts[idx], len(replayEvents)
				if n > cnt {
					return false
				}
				for i := 0; i < n; i++ {
					if replayEvents[i] != refEvents[cnt-n+i] {
						return false
					}
				}
				return true
			}
			// The op that observed the failure may still be durable: its
			// command record can precede the torn annotation. Both states
			// are honest recoveries.
			ok := got == fingerprints[applied] && eventsAlign(applied)
			if !ok && applied+1 < len(fingerprints) {
				ok = got == fingerprints[applied+1] && eventsAlign(applied+1)
			}
			if !ok {
				t.Fatalf("recovered state after %d/%d ops matches neither adjacent prefix (replayed %d events):\n%s",
					applied, len(ops), len(replayEvents), got)
			}

			// Acceptance: after recovery truncated the torn tail, the
			// directory verifies with zero corrupt records.
			rep, err := wal.Verify(crashDir)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() {
				t.Fatalf("post-recovery verify not clean: %+v", rep)
			}

			// And the recovered instance can resume journaling in place.
			j2 := openTestJournal(t, crashDir)
			if err := m2.AttachJournal(j2); err != nil {
				t.Fatal(err)
			}
			if _, err := m2.Submit(loc(fmt.Sprintf("resume%d", seed), 10_000, 0)); err != nil {
				t.Fatalf("resume after recovery: %v", err)
			}
			if err := m2.CloseJournal(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
