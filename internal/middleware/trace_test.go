package middleware

import (
	"strings"
	"testing"

	"ctxres/internal/strategy"
	"ctxres/internal/telemetry"
	"ctxres/internal/wal"
)

// find returns the first recorded span with the given op, or nil
// (memSink itself lives in telemetry_test.go).
func (s *memSink) find(op string) *telemetry.Span {
	if sps := s.byOp(op); len(sps) > 0 {
		return sps[0]
	}
	return nil
}

var testTrace = telemetry.TraceContext{
	TraceID: strings.Repeat("fe", 16),
	SpanID:  "0011223344556677",
}

// TestTracedSubmitStampsWALRecords pins trace propagation into the
// journal: a traced submission's records carry the trace ID and the
// pipeline span's ID (so followers can parent their apply spans on it),
// and untraced submissions leave the fields empty — the record encoding
// is unchanged when tracing is off.
func TestTracedSubmitStampsWALRecords(t *testing.T) {
	dir := t.TempDir()
	sink := &memSink{}
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropBad(),
		WithJournal(openTestJournal(t, dir)), WithSpanSink(sink))

	if _, err := m.SubmitOpts(loc("d1", 1, 0), SubmitOptions{Trace: testTrace}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(loc("d2", 2, 1)); err != nil { // untraced
		t.Fatal(err)
	}
	if err := m.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	sp := sink.find("submit")
	if sp == nil || sp.TraceID != testTrace.TraceID || sp.ParentID != testTrace.SpanID {
		t.Fatalf("submit span = %+v, want joined to %+v", sp, testTrace)
	}

	recs, err := wal.Records(dir)
	if err != nil {
		t.Fatal(err)
	}
	var traced, untraced *wal.Record
	for i := range recs {
		switch {
		case recs[i].Context != nil && recs[i].Context.ID == "d1":
			traced = &recs[i]
		case recs[i].Context != nil && recs[i].Context.ID == "d2":
			untraced = &recs[i]
		}
	}
	if traced == nil || untraced == nil {
		t.Fatalf("journal missing submit records: %+v", recs)
	}
	if traced.TraceID != testTrace.TraceID {
		t.Fatalf("record trace = %q, want %q", traced.TraceID, testTrace.TraceID)
	}
	if traced.SpanID != sp.SpanID {
		t.Fatalf("record span = %q, want the pipeline span %q", traced.SpanID, sp.SpanID)
	}
	if untraced.TraceID != "" || untraced.SpanID != "" {
		t.Fatalf("untraced record carries trace fields: %+v", untraced)
	}
}

// TestWalWaitSpanUnderGroupCommit pins the commit-wait hop: under group
// commit the acknowledgment waits for a shared fsync, and that wait is
// its own span parented on the submission's pipeline span.
func TestWalWaitSpanUnderGroupCommit(t *testing.T) {
	dir := t.TempDir()
	j, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncAlways, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	sink := &memSink{}
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropBad(),
		WithJournal(j), WithSpanSink(sink))

	if _, err := m.SubmitOpts(loc("d1", 1, 0), SubmitOptions{Trace: testTrace}); err != nil {
		t.Fatal(err)
	}
	if err := m.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	submit := sink.find("submit")
	wait := sink.find("wal_wait")
	if submit == nil || wait == nil {
		t.Fatalf("spans missing: submit=%v wait=%v", submit, wait)
	}
	if wait.TraceID != testTrace.TraceID || wait.ParentID != submit.SpanID {
		t.Fatalf("wal_wait span = %+v, want child of submit %q", wait, submit.SpanID)
	}
	if wait.Outcome != "durable" {
		t.Fatalf("wal_wait outcome = %q", wait.Outcome)
	}
}

// TestUseTraceJoins pins trace propagation on the read path.
func TestUseTraceJoins(t *testing.T) {
	sink := &memSink{}
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropBad(), WithSpanSink(sink))
	if _, err := m.Submit(loc("d1", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.UseTrace("d1", testTrace); err != nil {
		t.Fatal(err)
	}
	sp := sink.find("use")
	if sp == nil || sp.TraceID != testTrace.TraceID || sp.ParentID != testTrace.SpanID {
		t.Fatalf("use span = %+v, want joined to %+v", sp, testTrace)
	}
}

// TestProvenanceRecordsEveryViolation pins the ring contents: one event
// per violation with the strategy's discard decision, recorded whether
// or not the operation was traced.
func TestProvenanceRecordsEveryViolation(t *testing.T) {
	prov := telemetry.NewProvenanceRing(0)
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropLatest(), WithProvenance(prov))
	if _, err := m.Submit(loc("d1", 1, 0)); err != nil {
		t.Fatal(err)
	}
	vios, err := m.Submit(loc("d2", 2, 100)) // velocity violation
	if err != nil {
		t.Fatal(err)
	}
	if len(vios) == 0 {
		t.Fatal("no violation provoked")
	}
	events := prov.Events(0)
	if len(events) != len(vios) {
		t.Fatalf("events = %d, want one per violation (%d)", len(events), len(vios))
	}
	ev := events[0]
	if ev.Constraint != "vel" || ev.Strategy != "D-LAT" {
		t.Fatalf("event = %+v", ev)
	}
	if len(ev.Discarded) != 1 || ev.Discarded[0] != "d2" {
		t.Fatalf("discarded = %v, want the latest context d2", ev.Discarded)
	}
	if ev.TraceID != "" {
		t.Fatalf("untraced resolution carries trace %q", ev.TraceID)
	}
}
