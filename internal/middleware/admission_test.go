package middleware

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"ctxres/internal/constraint"
	"ctxres/internal/ctx"
	"ctxres/internal/health"
	"ctxres/internal/pool"
	"ctxres/internal/strategy"
	"ctxres/internal/testutil/leakcheck"
)

// jitterWorkload builds a deterministic mixed workload: location contexts
// with occasional teleports (velocity violations), short-TTL entries that
// expire mid-run, and irrelevant-kind contexts riding along. Each call
// returns fresh contexts, since submission mutates their state.
func jitterWorkload() []*ctx.Context {
	var cs []*ctx.Context
	seq := uint64(1)
	for i := 0; i < 40; i++ {
		x := float64(i)
		if i%7 == 3 {
			x += 50 // teleport: violates the velocity constraint
		}
		var opts []ctx.Option
		if i%5 == 2 {
			opts = append(opts, ctx.WithTTL(3*time.Second))
		}
		cs = append(cs, loc(fmt.Sprintf("w%02d", i), seq, x, opts...))
		seq++
		if i%9 == 4 { // a kind no constraint quantifies over
			cs = append(cs, ctx.New("temperature", t0.Add(time.Duration(seq)*time.Second), nil,
				ctx.WithID(ctx.ID(fmt.Sprintf("tmp%02d", i))), ctx.WithSubject("room"),
				ctx.WithSource("thermo"), ctx.WithSeq(seq)))
			seq++
		}
	}
	return cs
}

func submitAll(t *testing.T, m *Middleware, cs []*ctx.Context) {
	t.Helper()
	for _, c := range cs {
		if _, err := m.Submit(c); err != nil {
			t.Fatalf("submit %s: %v", c.ID, err)
		}
	}
}

func waitPending(t *testing.T, m *Middleware, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for int(m.pending.Load()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("pending never reached %d (at %d)", n, m.pending.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionQueueShed(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 2)
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropLatest(),
		WithAdmission(AdmissionOptions{MaxPending: 2}),
		WithHooks(Hooks{OnAccept: func(*ctx.Context) { started <- struct{}{}; <-block }}))
	done := make(chan error, 2)
	go func() { _, err := m.Submit(loc("q1", 1, 0)); done <- err }()
	<-started // q1 now blocks inside its hook, holding the middleware lock
	go func() { _, err := m.Submit(loc("q2", 2, 1)); done <- err }()
	waitPending(t, m, 2)

	// Queue full: the third submission is shed without blocking.
	if _, err := m.Submit(loc("q3", 3, 2)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	close(block)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	rs := m.Resilience()
	if rs.OverloadShed != 1 || rs.Pending != 0 {
		t.Fatalf("resilience = %+v, want OverloadShed 1, Pending 0", rs)
	}
	if st := m.Stats(); st.Submitted != 2 {
		t.Fatalf("submitted = %d, want 2 (shed submission must not count)", st.Submitted)
	}
}

func TestDeadlineShed(t *testing.T) {
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropLatest())
	_, err := m.SubmitOpts(loc("d1", 1, 0), SubmitOptions{Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if rs := m.Resilience(); rs.DeadlineShed != 1 {
		t.Fatalf("deadlineShed = %d, want 1", rs.DeadlineShed)
	}
	if st := m.Stats(); st.Submitted != 0 {
		t.Fatalf("submitted = %d, want 0", st.Submitted)
	}
	// A live deadline admits normally.
	if _, err := m.SubmitOpts(loc("d2", 2, 0), SubmitOptions{Deadline: time.Now().Add(time.Minute)}); err != nil {
		t.Fatal(err)
	}
}

// TestDegradedDifferential is the acceptance test for degraded mode:
// a run that defers every consistency check and catches up later must be
// byte-identical — pool, Σ, counters — to the always-check run on the
// same workload.
func TestDegradedDifferential(t *testing.T) {
	build := func(degraded bool) *Middleware {
		opts := []Option{}
		if degraded {
			// DegradeAt 1 makes every submission defer (pending includes
			// the submission itself), so the whole workload is replayed by
			// catch-up.
			opts = append(opts, WithAdmission(AdmissionOptions{DegradeAt: 1}))
		}
		return New(velocityChecker(t, 100, 1.5), strategy.NewDropBad(), opts...)
	}
	eager, lazy := build(false), build(true)

	// Phase 1: same workload into both; the lazy run defers everything.
	submitAll(t, eager, jitterWorkload())
	submitAll(t, lazy, jitterWorkload())
	if !lazy.Degraded() {
		t.Fatal("lazy middleware never degraded")
	}
	if lazy.Resilience().DeferredChecks == 0 {
		t.Fatal("no checks were deferred")
	}
	if err := lazy.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if lazy.Degraded() {
		t.Fatal("still degraded after catch-up")
	}
	if e, l := durableFingerprint(t, eager), durableFingerprint(t, lazy); e != l {
		t.Fatalf("phase 1 fingerprints diverge:\neager: %s\nlazy:  %s", e, l)
	}

	// Phase 2: interleave reads (which force catch-up implicitly) with a
	// second submission wave.
	for _, m := range []*Middleware{eager, lazy} {
		if _, err := m.UseLatest(ctx.KindLocation, "peter"); err != nil {
			t.Fatal(err)
		}
	}
	more := func() []*ctx.Context {
		return []*ctx.Context{
			loc("m1", 60, 39), loc("m2", 61, 90), loc("m3", 62, 41),
		}
	}
	submitAll(t, eager, more())
	submitAll(t, lazy, more())
	c1, err1 := eager.UseLatest(ctx.KindLocation, "peter")
	c2, err2 := lazy.UseLatest(ctx.KindLocation, "peter")
	if (err1 == nil) != (err2 == nil) || (err1 == nil && c1.ID != c2.ID) {
		t.Fatalf("delivery diverged: %v/%v vs %v/%v", c1, err1, c2, err2)
	}
	if e, l := durableFingerprint(t, eager), durableFingerprint(t, lazy); e != l {
		t.Fatalf("phase 2 fingerprints diverge:\neager: %s\nlazy:  %s", e, l)
	}
	if es, ls := eager.Stats(), lazy.Stats(); es != ls {
		t.Fatalf("stats diverge: eager %+v, lazy %+v", es, ls)
	}
}

func TestDegradedReadForcesCatchUp(t *testing.T) {
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropLatest(),
		WithAdmission(AdmissionOptions{DegradeAt: 1}))
	c := loc("r1", 1, 0)
	if _, err := m.Submit(c); err != nil {
		t.Fatal(err)
	}
	if !m.Degraded() || m.Pool().Len() != 0 {
		t.Fatalf("degraded=%v poolLen=%d, want deferred acknowledgement", m.Degraded(), m.Pool().Len())
	}
	got, err := m.Use(c.ID)
	if err != nil || got.ID != c.ID {
		t.Fatalf("use after deferral: %v, %v", got, err)
	}
	if m.Degraded() {
		t.Fatal("read did not force catch-up")
	}
	if rs := m.Resilience(); rs.CatchUps != 1 || rs.DeferredPending != 0 {
		t.Fatalf("resilience = %+v", rs)
	}
}

func TestDegradedDuplicateRejected(t *testing.T) {
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropLatest(),
		WithAdmission(AdmissionOptions{DegradeAt: 1}))
	if _, err := m.Submit(loc("dup", 1, 0)); err != nil {
		t.Fatal(err)
	}
	// Duplicate of a deferred (not yet pooled) context.
	if _, err := m.Submit(loc("dup", 2, 1)); !errors.Is(err, pool.ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	if err := m.CatchUp(); err != nil {
		t.Fatal(err)
	}
	// Duplicate of the now-pooled context.
	if _, err := m.Submit(loc("dup", 3, 2)); !errors.Is(err, pool.ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	if st := m.Stats(); st.Submitted != 1 {
		t.Fatalf("submitted = %d, want 1", st.Submitted)
	}
}

// slowChecker registers one location constraint whose predicate sleeps.
func slowChecker(tb testing.TB, d time.Duration) *constraint.Checker {
	tb.Helper()
	ch := constraint.NewChecker()
	ch.MustRegister(&constraint.Constraint{
		Name: "slow",
		Formula: constraint.Forall("a", ctx.KindLocation,
			constraint.Pred("sleepy", func([]*ctx.Context) bool {
				time.Sleep(d)
				return true
			}, "a")),
	})
	return ch
}

// panicChecker registers one location constraint whose predicate panics.
func panicChecker(tb testing.TB) *constraint.Checker {
	tb.Helper()
	ch := constraint.NewChecker()
	ch.MustRegister(&constraint.Constraint{
		Name: "boom",
		Formula: constraint.Forall("a", ctx.KindLocation,
			constraint.Pred("exploding", func([]*ctx.Context) bool {
				panic("predicate exploded")
			}, "a")),
	})
	return ch
}

func TestWatchdogCheckTimeout(t *testing.T) {
	// The abandoned check goroutine must exit on its own once the slow
	// predicate returns; leakcheck holds the test open until it does.
	defer leakcheck.Check(t)()
	m := New(slowChecker(t, 2*time.Second), strategy.NewDropLatest(),
		WithWatchdog(WatchdogOptions{CheckTimeout: 25 * time.Millisecond}))
	c := loc("wd1", 1, 0)
	if _, err := m.Submit(c); !errors.Is(err, ErrCheckTimeout) {
		t.Fatalf("err = %v, want ErrCheckTimeout", err)
	}
	if _, ok := m.Pool().Get(c.ID); ok {
		t.Fatal("aborted submission left in pool")
	}
	if st := m.Stats(); st.Submitted != 0 {
		t.Fatalf("submitted = %d, want 0 after rollback", st.Submitted)
	}
	if rs := m.Resilience(); rs.CheckTimeouts != 1 {
		t.Fatalf("checkTimeouts = %d, want 1", rs.CheckTimeouts)
	}
	// The middleware keeps serving: an irrelevant-kind context takes the
	// fast path and is admitted without a check.
	tmp := ctx.New("temperature", t0.Add(time.Second), nil,
		ctx.WithID("wd-temp"), ctx.WithSubject("room"), ctx.WithSource("thermo"))
	if _, err := m.Submit(tmp); err != nil {
		t.Fatal(err)
	}
}

func TestWatchdogCheckPanicContained(t *testing.T) {
	defer leakcheck.Check(t)()
	m := New(panicChecker(t), strategy.NewDropLatest(),
		WithWatchdog(WatchdogOptions{CheckTimeout: time.Second}))
	c := loc("wp1", 1, 0)
	_, err := m.Submit(c)
	if !errors.Is(err, ErrCheckFailed) {
		t.Fatalf("err = %v, want ErrCheckFailed", err)
	}
	if !strings.Contains(err.Error(), "predicate exploded") {
		t.Fatalf("panic value lost from error: %v", err)
	}
	if _, ok := m.Pool().Get(c.ID); ok {
		t.Fatal("aborted submission left in pool")
	}
	if rs := m.Resilience(); rs.CheckPanics != 1 {
		t.Fatalf("checkPanics = %d, want 1", rs.CheckPanics)
	}
}

// panicOnUse wraps a strategy and panics when consulted about a use.
type panicOnUse struct{ strategy.Strategy }

func (panicOnUse) OnUse(*ctx.Context) (bool, strategy.Outcome) { panic("strategy exploded") }

func TestWatchdogStrategyPanicOnUse(t *testing.T) {
	m := New(velocityChecker(t, 1, 1.5), panicOnUse{strategy.NewDropLatest()},
		WithWatchdog(WatchdogOptions{CheckTimeout: time.Second}))
	c := loc("sp1", 1, 0)
	if _, err := m.Submit(c); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Use(c.ID); !errors.Is(err, ErrCheckFailed) {
		t.Fatalf("err = %v, want ErrCheckFailed", err)
	}
	if m.Pool().Used(c.ID) {
		t.Fatal("aborted use marked the context used")
	}
	if rs := m.Resilience(); rs.CheckPanics != 1 {
		t.Fatalf("checkPanics = %d, want 1", rs.CheckPanics)
	}
}

func TestQuarantineTripAndRecover(t *testing.T) {
	tr := health.NewTracker(health.Config{
		Window: 8, MinSamples: 2, TripRatio: 0.5, Cooldown: 10 * time.Second, ProbeCount: 1,
	})
	m := New(velocityChecker(t, 100, 1.5), strategy.NewDropLatest(), WithHealth(tr))

	// Clean submission, then a teleport: the violation scores the source
	// Inconsistent and the drop-latest discard scores it Bad — over the
	// trip ratio.
	if _, err := m.Submit(loc("h1", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if vios, err := m.Submit(loc("h2", 2, 50)); err != nil || len(vios) == 0 {
		t.Fatalf("teleport: vios=%d err=%v, want a violation", len(vios), err)
	}
	if st := tr.State("tracker"); st != health.Open {
		t.Fatalf("breaker = %v, want open", st)
	}

	// Quarantined within the cooldown: acknowledged-but-dropped.
	if _, err := m.Submit(loc("h3", 3, 1)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("err = %v, want ErrQuarantined", err)
	}
	if rs := m.Resilience(); rs.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", rs.Quarantined)
	}
	if st := m.Stats(); st.Submitted != 2 {
		t.Fatalf("submitted = %d, want 2 (quarantined submission dropped)", st.Submitted)
	}

	// Logical time passes the cooldown: the next submission is the
	// half-open probe; clean, so the breaker closes again.
	if _, err := m.Submit(loc("h4", 13, 1)); err != nil {
		t.Fatal(err)
	}
	if st := tr.State("tracker"); st != health.Closed {
		t.Fatalf("breaker = %v, want closed after clean probe", st)
	}
	snap := m.HealthSnapshot()
	if snap == nil || snap.Trips != 1 || snap.Recoveries != 1 {
		t.Fatalf("health snapshot = %+v, want 1 trip, 1 recovery", snap)
	}
}

// TestDegradedJournalRecovery pins the soundness of journaling deferred
// submissions at acknowledgement time: a recovery replays them through
// the eager-checking path, which must land on the same state catch-up
// built live.
func TestDegradedJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	build := func() *Middleware {
		return New(velocityChecker(t, 100, 1.5), strategy.NewDropBad(),
			WithAdmission(AdmissionOptions{DegradeAt: 1}))
	}
	m := build()
	if err := m.AttachJournal(openTestJournal(t, dir)); err != nil {
		t.Fatal(err)
	}
	submitAll(t, m, jitterWorkload())
	if !m.Degraded() {
		t.Fatal("never degraded")
	}
	// CloseJournal must catch up before the final stats annotation.
	if err := m.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	if m.Degraded() {
		t.Fatal("CloseJournal did not catch up")
	}
	rec, rep, err := Recover(dir, build)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StatsChecked == 0 {
		t.Fatal("recovery never cross-checked stats")
	}
	if live, rcv := durableFingerprint(t, m), durableFingerprint(t, rec); live != rcv {
		t.Fatalf("recovered state diverges:\nlive:      %s\nrecovered: %s", live, rcv)
	}
}

// TestDegradedCheckpoint covers the snapshot path: a checkpoint taken
// while degraded must fold the deferred submissions in first, since their
// submit records are already inside the snapshot's covered prefix.
func TestDegradedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	build := func() *Middleware {
		return New(velocityChecker(t, 100, 1.5), strategy.NewDropBad(),
			WithAdmission(AdmissionOptions{DegradeAt: 1}))
	}
	m := build()
	if err := m.AttachJournal(openTestJournal(t, dir)); err != nil {
		t.Fatal(err)
	}
	work := jitterWorkload()
	submitAll(t, m, work[:20])
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if m.Degraded() {
		t.Fatal("Checkpoint did not catch up")
	}
	submitAll(t, m, work[20:])
	if err := m.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	rec, _, err := Recover(dir, build)
	if err != nil {
		t.Fatal(err)
	}
	if live, rcv := durableFingerprint(t, m), durableFingerprint(t, rec); live != rcv {
		t.Fatalf("recovered state diverges:\nlive:      %s\nrecovered: %s", live, rcv)
	}
}

// TestWatchdogRollbackJournal verifies a watchdog abort leaves no submit
// record behind: recovery rebuilds a state without the aborted context.
func TestWatchdogRollbackJournal(t *testing.T) {
	dir := t.TempDir()
	build := func() *Middleware {
		return New(slowChecker(t, 2*time.Second), strategy.NewDropLatest(),
			WithWatchdog(WatchdogOptions{CheckTimeout: 25 * time.Millisecond}))
	}
	m := build()
	if err := m.AttachJournal(openTestJournal(t, dir)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(loc("gone", 1, 0)); !errors.Is(err, ErrCheckTimeout) {
		t.Fatalf("err = %v, want ErrCheckTimeout", err)
	}
	tmp := ctx.New("temperature", t0.Add(time.Second), nil,
		ctx.WithID("kept"), ctx.WithSubject("room"), ctx.WithSource("thermo"))
	if _, err := m.Submit(tmp); err != nil {
		t.Fatal(err)
	}
	if err := m.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	rec, rep, err := Recover(dir, build)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rec.Pool().Get("gone"); ok {
		t.Fatal("aborted submission resurrected by recovery")
	}
	if _, ok := rec.Pool().Get("kept"); !ok {
		t.Fatal("surviving submission lost by recovery")
	}
	// The abort is journaled as an annotation (check-fail + final stats).
	if rep.Annotations < 2 {
		t.Fatalf("annotations = %d, want the check-fail annotation replay-skipped", rep.Annotations)
	}
	if live, rcv := durableFingerprint(t, m), durableFingerprint(t, rec); live != rcv {
		t.Fatalf("recovered state diverges:\nlive:      %s\nrecovered: %s", live, rcv)
	}
}

// TestDefaultsUnchanged pins that a middleware without any resilience
// option reports zeroed resilience stats and never defers or sheds.
func TestDefaultsUnchanged(t *testing.T) {
	m := New(velocityChecker(t, 100, 1.5), strategy.NewDropBad())
	submitAll(t, m, jitterWorkload())
	if rs := m.Resilience(); rs != (ResilienceStats{}) {
		t.Fatalf("resilience = %+v, want zero value", rs)
	}
	if m.Degraded() {
		t.Fatal("degraded without admission options")
	}
}
