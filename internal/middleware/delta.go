package middleware

import (
	"sort"
	"time"

	"ctxres/internal/ctx"
)

// Delta describes the effect one state-changing middleware operation had
// on the pool's available view: the set of context kinds whose membership
// may have changed (additions, discards, expiries, rollbacks) and the
// logical clock at the end of the operation. Consumers — the daemon's
// subscription hub — use the kind set to re-evaluate only standing
// formulas that quantify over an affected kind, the same pruning the
// incremental checker applies through the kind index.
type Delta struct {
	// Kinds lists the affected context kinds, sorted for determinism.
	Kinds []ctx.Kind
	// Clock is the middleware's logical clock after the operation.
	Clock time.Time
	// TraceID/SpanID link the delta to the distributed trace of the
	// operation that produced it (the operation's span as parent), so
	// subscription pushes triggered by a sampled submission appear as
	// child spans of it. Empty on untraced operations.
	TraceID string
	SpanID  string
}

// DeltaHook observes pool deltas. Like Hooks, it runs under the
// middleware lock after the operation's journal records are committed:
// it must be fast and must not call back into the middleware's public
// methods (pool reads are fine — the pool has its own lock).
type DeltaHook func(d Delta)

// WithDeltaHook installs a delta hook at construction time.
func WithDeltaHook(h DeltaHook) Option {
	return func(m *Middleware) { m.deltaHook = h }
}

// SetDeltaHook installs, replaces, or (with nil) removes the delta hook.
// The swap takes the middleware lock, so it serializes with in-flight
// operations: once SetDeltaHook(nil) returns, the old hook will not fire
// again.
func (m *Middleware) SetDeltaHook(h DeltaHook) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deltaHook = h
}

// deltaMark records, within the current locked operation, that the
// available membership of kind may have changed. Cheap no-op when no hook
// is installed or during WAL replay (the replayed operations' deltas were
// already observed live).
func (m *Middleware) deltaMark(kind ctx.Kind) {
	if m.deltaHook == nil || m.replaying {
		return
	}
	if m.deltaKinds == nil {
		m.deltaKinds = make(map[ctx.Kind]bool, 4)
	}
	m.deltaKinds[kind] = true
}

// notifyDeltaLocked flushes the accumulated kind marks to the hook.
// Each state-changing entry point defers it before its journal-commit
// defer, so (LIFO) the hook observes post-commit state.
func (m *Middleware) notifyDeltaLocked() {
	if m.deltaHook == nil || len(m.deltaKinds) == 0 {
		return
	}
	kinds := make([]ctx.Kind, 0, len(m.deltaKinds))
	for k := range m.deltaKinds {
		kinds = append(kinds, k)
		delete(m.deltaKinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	d := Delta{Kinds: kinds, Clock: m.clock}
	if sp := m.curSpan; sp != nil {
		d.TraceID, d.SpanID = sp.TraceID, sp.SpanID
	}
	m.deltaHook(d)
}
