package middleware

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"ctxres/internal/ctx"
	"ctxres/internal/pool"
	"ctxres/internal/situation"
	"ctxres/internal/strategy"
	"ctxres/internal/telemetry"
	"ctxres/internal/wal"
)

// ErrNoJournal is returned by durability operations when no journal is
// attached.
var ErrNoJournal = errors.New("middleware: no journal attached")

// WithJournal attaches a write-ahead log at construction time. Every
// state-changing operation appends its records to the journal before the
// middleware lock is released; a write failure is sticky and fails all
// further state-changing operations (fail-stop — the in-memory state never
// runs ahead of what a recovery could reconstruct, except for the one
// operation that observed the failure).
func WithJournal(j *wal.Journal) Option {
	return func(m *Middleware) {
		if err := m.AttachJournal(j); err != nil {
			// New cannot return an error; double-attach at construction is a
			// programming error.
			panic(err)
		}
	}
}

// AttachJournal attaches a write-ahead log to an already-built middleware
// (the recovery path: Recover rebuilds state first, then the caller opens
// the journal — which truncates any torn tail — and attaches it).
func (m *Middleware) AttachJournal(j *wal.Journal) error {
	if j == nil {
		return errors.New("middleware: attach nil journal")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.journal != nil {
		return errors.New("middleware: journal already attached")
	}
	m.journal = j
	m.journalErr = nil
	if bn, ok := m.strat.(strategy.BadMarkNotifier); ok {
		// Bad-marking is a strategy-internal mutation the middleware never
		// sees; the hook journals it as an annotation. It fires inside
		// strat.OnUse, i.e. under the middleware lock.
		bn.SetBadMarkHook(func(c *ctx.Context) {
			m.jAppend(wal.Record{Type: wal.RecordBad, ID: c.ID})
		})
	}
	return nil
}

// JournalStats returns the attached journal's counters, or nil when no
// journal is attached.
func (m *Middleware) JournalStats() *wal.Stats {
	m.mu.Lock()
	j := m.journal
	m.mu.Unlock()
	if j == nil {
		return nil
	}
	s := j.Stats()
	return &s
}

// jAppend queues a record for the current operation. It must be called
// with the lock held; the records are flushed to the journal by
// journalCommitLocked before the operation returns.
func (m *Middleware) jAppend(r wal.Record) {
	if m.journal == nil || m.journalErr != nil {
		return
	}
	if sp := m.curSpan; sp != nil && sp.TraceID != "" {
		r.TraceID = sp.TraceID
		r.SpanID = sp.SpanID
	}
	m.jbuf = append(m.jbuf, r)
}

// journalHealthLocked refuses state-changing operations once the journal
// has failed (fail-stop).
func (m *Middleware) journalHealthLocked() error {
	if m.journalErr != nil {
		return fmt.Errorf("middleware: journal failed: %w", m.journalErr)
	}
	return nil
}

// commitWait carries one operation's durability obligation past the
// middleware lock. Under group commit, journalCommitLocked records the
// highest sequence the operation appended here instead of waiting for the
// fsync inline; commitDurable — deferred before the lock's own defer, so
// (LIFO) it runs after the unlock — then blocks on the shared fsync. That
// ordering is the whole point: the fsync wait happens with the middleware
// lock released, so concurrent operations append, queue, and coalesce
// into one fsync instead of serializing on it.
type commitWait struct {
	j   *wal.Journal
	seq uint64

	// trace/sink capture the operation's trace context across the lock
	// boundary: the fsync wait happens after opDone has already emitted
	// the operation's span (defer LIFO), so the wait gets a span of its
	// own, parented on the operation's.
	trace telemetry.TraceContext
	sink  telemetry.SpanSink
}

// journalCommitLocked appends the operation's queued records to the
// journal. On a write failure the error is recorded as sticky and, when
// errp points at a nil error, surfaced to the caller. Under group commit
// the records are written but not yet synced; the operation's durability
// point moves to commitDurable via wait.
func (m *Middleware) journalCommitLocked(errp *error, wait *commitWait) {
	if m.journal == nil || len(m.jbuf) == 0 {
		return
	}
	recs := m.jbuf
	m.jbuf = m.jbuf[:0]
	if m.journalErr != nil {
		return
	}
	start := m.tel.now()
	defer func() { m.tel.stageDone(m.curSpan, telemetry.StageJournal, start) }()
	for _, r := range recs {
		seq, err := m.journal.Append(r)
		if err != nil {
			m.journalErr = err
			if errp != nil && *errp == nil {
				*errp = fmt.Errorf("middleware: journal append: %w", err)
			}
			return
		}
		if wait != nil && m.journal.GroupCommit() {
			wait.j = m.journal
			wait.seq = seq
			if sp := m.curSpan; sp != nil && sp.TraceID != "" && m.tel.sink != nil {
				wait.trace = telemetry.TraceContext{TraceID: sp.TraceID, SpanID: sp.SpanID}
				wait.sink = m.tel.sink
			}
		}
	}
}

// commitDurable discharges a commitWait: it blocks until every record the
// operation appended is fsynced. It must run after the middleware lock is
// released (register its defer before the unlock's). A durability failure
// is recorded as the sticky journal error — the records may or may not
// have reached the disk, so the log can no longer be trusted to match
// acknowledged state — and surfaced through errp when no earlier error
// claimed it.
func (m *Middleware) commitDurable(wait *commitWait, errp *error) {
	if wait.j == nil {
		return
	}
	var start time.Time
	if wait.sink != nil {
		start = time.Now()
	}
	err := wait.j.WaitDurable(wait.seq)
	if wait.sink != nil {
		sp := &telemetry.Span{
			Op:       "wal_wait",
			TraceID:  wait.trace.TraceID,
			ParentID: wait.trace.SpanID,
			SpanID:   telemetry.NewSpanID(),
			Start:    start,
			Seconds:  time.Since(start).Seconds(),
			Outcome:  "durable",
		}
		if err != nil {
			sp.Outcome = "error"
		}
		wait.sink.RecordSpan(sp)
	}
	if err != nil {
		m.mu.Lock()
		if m.journal == wait.j && m.journalErr == nil {
			m.journalErr = err
		}
		m.mu.Unlock()
		if errp != nil && *errp == nil {
			*errp = fmt.Errorf("middleware: journal commit: %w", err)
		}
	}
}

// snapshotLocked captures the full middleware state as of journal sequence
// seq: pool contents, logical clock, counters, and — for strategies with
// internal buffers — the serialized strategy state (Σ and its counters for
// drop-bad).
func (m *Middleware) snapshotLocked(seq uint64) (wal.Snapshot, error) {
	snap := wal.Snapshot{
		Seq:      seq,
		Clock:    m.clock,
		Strategy: m.strat.Name(),
		Pool:     m.pool.Snapshot(),
	}
	stats, err := json.Marshal(m.stats)
	if err != nil {
		return wal.Snapshot{}, fmt.Errorf("middleware: snapshot stats: %w", err)
	}
	snap.Stats = stats
	if sn, ok := m.strat.(strategy.StateSnapshotter); ok {
		blob, err := sn.StrategyState()
		if err != nil {
			return wal.Snapshot{}, fmt.Errorf("middleware: snapshot strategy: %w", err)
		}
		snap.StrategyState = blob
	}
	if m.situations != nil {
		blob, err := json.Marshal(m.situations.State())
		if err != nil {
			return wal.Snapshot{}, fmt.Errorf("middleware: snapshot situations: %w", err)
		}
		snap.Situations = blob
	}
	return snap, nil
}

// Fingerprint serializes the full durable state — pool, clock, strategy
// buffer, counters, situation activations — exactly as a checkpoint
// snapshot would (with sequence zero), so two middlewares can be
// compared byte for byte. The crash-recovery and cluster-failover tests
// use it to prove a recovered or promoted node matches its reference.
func (m *Middleware) Fingerprint() (string, error) {
	m.mu.Lock()
	snap, err := m.snapshotLocked(0)
	m.mu.Unlock()
	if err != nil {
		return "", err
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// statsRecordLocked queues a stats annotation carrying the current
// counters, so recovery can cross-check the replayed state.
func (m *Middleware) statsRecordLocked() error {
	blob, err := json.Marshal(m.stats)
	if err != nil {
		return fmt.Errorf("middleware: marshal stats: %w", err)
	}
	m.jAppend(wal.Record{Type: wal.RecordStats, Stats: blob})
	return nil
}

// Checkpoint writes a snapshot of the full middleware state to the
// journal, allowing it to truncate obsolete segments, then journals a
// stats annotation so the next recovery verifies the restored counters.
func (m *Middleware) Checkpoint() (err error) {
	var wait commitWait
	defer m.commitDurable(&wait, &err)
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.journalCommitLocked(&err, &wait)
	if m.journal == nil {
		return ErrNoJournal
	}
	if err := m.journalHealthLocked(); err != nil {
		return err
	}
	// Deferred checks must land before the snapshot: the snapshot covers
	// their already-committed submit records, so it must also contain
	// their effects.
	if err := m.catchUpLocked(nil); err != nil {
		return err
	}
	snap, err := m.snapshotLocked(m.journal.LastSeq())
	if err != nil {
		return err
	}
	if err := m.journal.WriteSnapshot(snap); err != nil {
		m.journalErr = err
		return fmt.Errorf("middleware: checkpoint: %w", err)
	}
	return m.statsRecordLocked()
}

// CloseJournal journals a final stats annotation (when the journal is
// still healthy), closes the journal, and detaches it. The middleware
// remains usable without durability afterwards.
func (m *Middleware) CloseJournal() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.journal == nil {
		return nil
	}
	if m.journalErr == nil {
		// Deferred checks must land before the final stats annotation so
		// the journaled counters match an eager-checking replay.
		_ = m.catchUpLocked(nil)
	}
	if m.journalErr == nil {
		if err := m.statsRecordLocked(); err == nil {
			// No commitWait: Close below syncs everything unconditionally.
			m.journalCommitLocked(nil, nil)
		}
	}
	err := m.journal.Close()
	if bn, ok := m.strat.(strategy.BadMarkNotifier); ok {
		bn.SetBadMarkHook(nil)
	}
	m.journal = nil
	m.jbuf = nil
	m.journalErr = nil
	return err
}

// RecoveryReport describes what Recover reconstructed.
type RecoveryReport struct {
	// SnapshotPath is the snapshot file the recovery started from (empty
	// when state was rebuilt from the log alone).
	SnapshotPath string `json:"snapshotPath,omitempty"`
	// SnapshotSeq is the last journal sequence the snapshot covers.
	SnapshotSeq uint64 `json:"snapshotSeq"`
	// Commands counts the replayed command records.
	Commands int `json:"commands"`
	// Annotations counts the derived records skipped during replay.
	Annotations int `json:"annotations"`
	// StatsChecked counts the stats annotations cross-checked against the
	// recovered counters.
	StatsChecked int `json:"statsChecked"`
	// TornBytes is the size of the torn tail truncated from the final
	// segment, if any.
	TornBytes int64 `json:"tornBytes"`
	// SkippedSnapshots lists unreadable snapshot files that were skipped in
	// favor of an older one.
	SkippedSnapshots []string `json:"skippedSnapshots,omitempty"`
	// LastSeq is the last journal sequence applied.
	LastSeq uint64 `json:"lastSeq"`
}

// Recover rebuilds middleware state from the write-ahead log directory:
// it loads the newest valid snapshot (if any) and replays the subsequent
// command records through the ordinary Submit/Use/AdvanceTo/Compact entry
// points, re-deriving every strategy decision deterministically. A torn
// final record (a crash mid-write) is tolerated; real corruption is an
// error.
//
// build must return a fresh middleware configured exactly as the crashed
// one (same constraints, same strategy, same options) and with no journal
// attached — after Recover returns, the caller opens the journal (which
// truncates the torn tail on disk) and attaches it with AttachJournal.
func Recover(dir string, build func() *Middleware) (*Middleware, *RecoveryReport, error) {
	res, err := wal.Load(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("middleware: recover: %w", err)
	}
	m := build()
	if m == nil {
		return nil, nil, errors.New("middleware: recover: build returned nil")
	}
	if m.journal != nil {
		return nil, nil, errors.New("middleware: recover: build must not attach a journal")
	}
	rep := &RecoveryReport{
		SnapshotPath:     res.SnapshotPath,
		TornBytes:        res.TornBytes,
		SkippedSnapshots: res.SkippedSnapshots,
	}
	if res.Snapshot != nil {
		if err := m.restoreSnapshot(res.Snapshot); err != nil {
			return nil, nil, fmt.Errorf("middleware: recover: %w", err)
		}
		rep.SnapshotSeq = res.Snapshot.Seq
		rep.LastSeq = res.Snapshot.Seq
	}
	// Replay drives the public entry points; the journal only contains
	// submissions that passed the admission gates live, so the gates must
	// not second-guess it (a breaker tripping at a different point during
	// replay would otherwise reject a journaled submit).
	m.mu.Lock()
	m.replaying = true
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.replaying = false
		m.mu.Unlock()
	}()
	for _, rec := range res.Records {
		if err := m.replayRecord(rec, rep); err != nil {
			return nil, nil, fmt.Errorf("middleware: recover: record %d (%s): %w", rec.Seq, rec.Type, err)
		}
		rep.LastSeq = rec.Seq
	}
	return m, rep, nil
}

// restoreSnapshot loads a snapshot into a freshly built middleware.
func (m *Middleware) restoreSnapshot(snap *wal.Snapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if snap.Strategy != "" && snap.Strategy != m.strat.Name() {
		return fmt.Errorf("snapshot was taken with strategy %s, middleware runs %s", snap.Strategy, m.strat.Name())
	}
	p, err := pool.Restore(snap.Pool)
	if err != nil {
		return err
	}
	m.pool = p
	m.clock = snap.Clock
	if len(snap.Stats) > 0 {
		var st Stats
		if err := json.Unmarshal(snap.Stats, &st); err != nil {
			return fmt.Errorf("snapshot stats: %w", err)
		}
		m.stats = st
	}
	if len(snap.StrategyState) > 0 {
		sn, ok := m.strat.(strategy.StateSnapshotter)
		if !ok {
			return fmt.Errorf("snapshot carries strategy state but %s cannot restore it", m.strat.Name())
		}
		if err := sn.RestoreStrategyState(snap.StrategyState, p.Get); err != nil {
			return err
		}
	}
	if len(snap.Situations) > 0 {
		if m.situations == nil {
			return errors.New("snapshot carries situation state but the middleware has no engine")
		}
		var st situation.State
		if err := json.Unmarshal(snap.Situations, &st); err != nil {
			return fmt.Errorf("snapshot situations: %w", err)
		}
		m.situations.RestoreState(st)
	}
	return nil
}

// replayRecord applies one journal record. Commands run through the
// public entry points; annotations are derived state journaled for
// observability and are skipped, except stats annotations, which are
// cross-checked against the replayed counters.
func (m *Middleware) replayRecord(rec wal.Record, rep *RecoveryReport) error {
	switch rec.Type {
	case wal.RecordSubmit:
		rep.Commands++
		if _, err := m.Submit(rec.Context); err != nil {
			return err
		}
	case wal.RecordUse:
		rep.Commands++
		// A use that the strategy rejected was journaled too: the rejection
		// (and its discards) re-derives identically, surfacing as
		// ErrInconsistent here.
		if _, err := m.Use(rec.ID); err != nil && !errors.Is(err, ErrInconsistent) {
			return err
		}
	case wal.RecordAdvance:
		rep.Commands++
		if rec.Time == nil {
			return errors.New("advance record without time")
		}
		m.AdvanceTo(*rec.Time)
	case wal.RecordCompact:
		rep.Commands++
		if _, err := m.Compact(); err != nil {
			return err
		}
	case wal.RecordStats:
		rep.Annotations++
		rep.StatsChecked++
		var want Stats
		if err := json.Unmarshal(rec.Stats, &want); err != nil {
			return fmt.Errorf("stats annotation: %w", err)
		}
		if got := m.Stats(); got != want {
			return fmt.Errorf("replayed stats diverge from journal: got %+v, journal %+v", got, want)
		}
	case wal.RecordDiscard, wal.RecordExpire, wal.RecordBad:
		// Derived during replay of the commands above.
		rep.Annotations++
	case wal.RecordCheckFail:
		// A watchdog abort: the operation it annotates was rolled back (or
		// the journal fail-stopped right after), so there is nothing to
		// re-apply.
		rep.Annotations++
	case wal.RecordEpochBump:
		// A fencing-epoch advance: journal-level state, not middleware
		// state. wal.Open recovers the epoch from it; replay skips it.
		rep.Annotations++
	default:
		return fmt.Errorf("unknown record type %q", rec.Type)
	}
	return nil
}
