package middleware

import (
	"strings"
	"testing"
	"time"

	"ctxres/internal/constraint"
	"ctxres/internal/ctx"
	"ctxres/internal/situation"
	"ctxres/internal/strategy"
)

// presenceEngine builds a one-situation engine with a fixed wall clock so
// full events compare byte-for-byte across runs.
func presenceEngine() *situation.Engine {
	eng := situation.NewEngine()
	eng.MustRegister(&situation.Situation{
		Name: "peter-present",
		Formula: constraint.Exists("a", ctx.KindLocation,
			constraint.SubjectIs("a", "peter")),
	})
	eng.SetWallClock(func() time.Time { return t0 })
	return eng
}

// TestJournalSituationsCheckpointRoundTrip pins the interaction between
// checkpoints and situation state: a snapshot taken while a situation is
// active must restore that activation, so replaying the journal tail emits
// exactly the post-checkpoint transitions — no spurious re-activation from
// an engine that woke up all-inactive.
func TestJournalSituationsCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var refEvents []string
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropBad(),
		WithSituations(presenceEngine()),
		WithSituationHook(func(ev situation.Event) { refEvents = append(refEvents, ev.String()) }),
		WithJournal(openTestJournal(t, dir)))

	if _, err := m.Submit(loc("d1", 1, 0, ctx.WithTTL(5*time.Second))); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Use("d1"); err != nil {
		t.Fatal(err)
	}
	if len(refEvents) != 1 || !strings.Contains(refEvents[0], "activated") {
		t.Fatalf("events = %v, want one activation", refEvents)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Past d1's TTL, a delivery for another subject re-evaluates the
	// situations and deactivates peter-present; this transition lands after
	// the checkpoint, so recovery must regenerate it — and only it.
	anna := ctx.NewLocation("anna", t0.Add(30*time.Second), ctx.Point{},
		ctx.WithID("a1"), ctx.WithSeq(30), ctx.WithSource("tracker"))
	if _, err := m.Submit(anna); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Use("a1"); err != nil {
		t.Fatal(err)
	}
	if len(refEvents) != 2 || !strings.Contains(refEvents[1], "deactivated") {
		t.Fatalf("events = %v, want a deactivation after expiry", refEvents)
	}
	want := durableFingerprint(t, m)
	if err := m.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	var replayEvents []string
	eng2 := presenceEngine()
	m2, rep, err := Recover(dir, func() *Middleware {
		return New(velocityChecker(t, 1, 1.5), strategy.NewDropBad(),
			WithSituations(eng2),
			WithSituationHook(func(ev situation.Event) { replayEvents = append(replayEvents, ev.String()) }))
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SnapshotSeq == 0 {
		t.Fatalf("report = %+v, want recovery from the checkpoint snapshot", rep)
	}
	if got := durableFingerprint(t, m2); got != want {
		t.Fatalf("recovered state diverges:\n got %s\nwant %s", got, want)
	}
	// Only the post-checkpoint transition replays, byte-identical to the
	// one the pre-crash run emitted.
	if len(replayEvents) != 1 || replayEvents[0] != refEvents[1] {
		t.Fatalf("replayed events = %v, want exactly [%s]", replayEvents, refEvents[1])
	}
	if eng2.Active("peter-present") {
		t.Fatal("situation still active after recovered expiry")
	}
	if eng2.Activations() != 1 || eng2.Deactivations() != 1 {
		t.Fatalf("counters = %d/%d, want 1/1", eng2.Activations(), eng2.Deactivations())
	}
}

// TestRecoverSituationSnapshotNeedsEngine: a snapshot that carries situation
// state must not be silently dropped when recovery builds a middleware
// without an engine — that would resurrect the spurious-reactivation bug
// the snapshot field exists to prevent.
func TestRecoverSituationSnapshotNeedsEngine(t *testing.T) {
	dir := t.TempDir()
	m := New(velocityChecker(t, 1, 1.5), strategy.NewDropBad(),
		WithSituations(presenceEngine()),
		WithJournal(openTestJournal(t, dir)))
	if _, err := m.Submit(loc("d1", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Use("d1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	_, _, err := Recover(dir, func() *Middleware {
		return New(velocityChecker(t, 1, 1.5), strategy.NewDropBad())
	})
	if err == nil || !strings.Contains(err.Error(), "no engine") {
		t.Fatalf("recover without engine = %v, want engine-missing error", err)
	}
}
