// Overload resilience for the processing pipeline: admission control
// (bounded submit queue with deadline-aware load shedding), a degraded
// mode that defers consistency checking under sustained pressure and
// catches up in batch once load drops, per-source circuit breakers
// (internal/health), and a watchdog that bounds the consistency check and
// strategy resolution, containing stuck or panicking evaluations as
// typed, counted, journaled failures.
//
// Every mechanism here is opt-in: a middleware built without
// WithAdmission, WithHealth, or WithWatchdog behaves byte-identically to
// one that predates this file.
//
// Degraded-mode equivalence. While degraded, Submit acknowledges a
// context without processing it: the context is queued (not added to the
// pool), no expiry sweep runs, and the logical clock at acknowledgement
// time is recorded alongside it. Catch-up replays the queue in arrival
// order, sweeping expiry forward to each entry's recorded clock before
// running the ordinary inline pipeline — exactly the operation sequence
// the always-check path would have executed — so the resulting pool,
// strategy state (Σ), and counters are byte-identical to never having
// degraded (TestDegradedDifferential pins this). Read operations (Use,
// UseLatest, AdvanceTo, Compact, Checkpoint) force a catch-up first, so
// applications never observe half-caught-up state.
package middleware

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"ctxres/internal/constraint"
	"ctxres/internal/ctx"
	"ctxres/internal/health"
	"ctxres/internal/pool"
	"ctxres/internal/strategy"
	"ctxres/internal/telemetry"
	"ctxres/internal/wal"
)

// Admission and watchdog errors. The daemon maps each to a typed protocol
// code so clients can distinguish shed load (retry later, elsewhere) from
// rejected data (do not retry).
var (
	// ErrOverloaded rejects a submission the middleware cannot take on:
	// the pending-submit queue is full, or the client's deadline passed
	// before processing began.
	ErrOverloaded = errors.New("middleware overloaded")
	// ErrQuarantined drops a submission because its source's circuit
	// breaker is open (see internal/health).
	ErrQuarantined = errors.New("context source quarantined")
	// ErrCheckTimeout aborts a submission whose consistency check
	// exceeded the watchdog timeout.
	ErrCheckTimeout = errors.New("consistency check timed out")
	// ErrCheckFailed aborts an operation whose check or strategy
	// resolution panicked (recovered by the watchdog).
	ErrCheckFailed = errors.New("check aborted by recovered panic")
)

// SubmitOptions carries per-call admission parameters for SubmitOpts.
type SubmitOptions struct {
	// Deadline, when non-zero, sheds the submission with ErrOverloaded if
	// its processing has not started by then: work that would complete
	// past the point the client stops caring is not worth starting. The
	// deadline is checked against the wall clock once the submission
	// reaches the front of the queue, never mid-check.
	Deadline time.Time

	// Trace is the distributed trace context the submission arrived
	// under (the caller's span as parent). The zero value means
	// untraced; when set and a span sink is installed, the submission's
	// pipeline span joins the trace and every WAL record it appends is
	// stamped with the trace.
	Trace telemetry.TraceContext
}

// AdmissionOptions bounds the submit queue and configures degraded mode.
// The zero value disables both.
type AdmissionOptions struct {
	// MaxPending caps concurrently pending Submit operations (the one
	// being processed plus those queued behind the middleware lock).
	// Submissions beyond the cap are shed immediately with ErrOverloaded,
	// without blocking. 0 means unbounded.
	MaxPending int
	// DegradeAt enters degraded mode when the pending-submit count
	// reaches it: submissions are acknowledged and journaled but their
	// consistency checks are deferred until load drops (see the package
	// comment for the equivalence argument). 0 disables degraded mode.
	DegradeAt int
	// ResumeAt leaves degraded mode (running the deferred checks in
	// batch) once the pending count falls back to it. Values >= DegradeAt
	// are clamped to DegradeAt-1 so the mode cannot flap on one arrival.
	ResumeAt int
}

func (o AdmissionOptions) enabled() bool { return o.MaxPending > 0 || o.DegradeAt > 0 }

func (o AdmissionOptions) resumeAt() int {
	if o.ResumeAt >= o.DegradeAt {
		return o.DegradeAt - 1
	}
	return o.ResumeAt
}

// WithAdmission enables admission control.
func WithAdmission(o AdmissionOptions) Option {
	return func(m *Middleware) { m.adm = o }
}

// WatchdogOptions bounds pipeline stages. The zero value disables the
// watchdog.
type WatchdogOptions struct {
	// CheckTimeout bounds one submission's consistency check. A check
	// still running when it elapses is abandoned (the computation runs on
	// a snapshot and its result is discarded) and the submission is
	// rolled back with ErrCheckTimeout. A non-zero timeout also arms
	// panic containment: a panic in the check or in the strategy's
	// OnAddition/OnUse is recovered and converted to ErrCheckFailed
	// instead of crashing the process. 0 disables both.
	CheckTimeout time.Duration
}

// WithWatchdog enables the check watchdog and panic containment.
func WithWatchdog(o WatchdogOptions) Option {
	return func(m *Middleware) { m.wd = o }
}

// WithHealth installs a per-source health tracker: every submission is
// gated on its source's circuit breaker (open breaker → ErrQuarantined),
// and check outcomes, strategy discards, and expiries feed the source's
// sliding score window. Breaker time is the middleware's logical clock,
// so tests replay deterministically.
func WithHealth(t *health.Tracker) Option {
	return func(m *Middleware) { m.health = t }
}

// resilienceCounters are the overload-control counters. They are atomics
// because queue-full shedding happens before the middleware lock is
// taken; they are deliberately NOT part of the journaled Stats struct —
// shed and quarantined submissions never reach the log, so a recovery
// cross-check against them could never balance.
type resilienceCounters struct {
	overloadShed   atomic.Int64
	deadlineShed   atomic.Int64
	quarantined    atomic.Int64
	deferredChecks atomic.Int64
	catchUps       atomic.Int64
	degradedEnters atomic.Int64
	checkTimeouts  atomic.Int64
	checkPanics    atomic.Int64
}

// ResilienceStats is a snapshot of the overload-control counters (all
// zero unless the corresponding mechanisms are enabled).
type ResilienceStats struct {
	// OverloadShed counts submissions shed because the pending queue was
	// full; DeadlineShed those shed because the client deadline had
	// already passed when processing would have started.
	OverloadShed int64 `json:"overloadShed"`
	DeadlineShed int64 `json:"deadlineShed"`
	// Quarantined counts submissions dropped at their source's open
	// circuit breaker.
	Quarantined int64 `json:"quarantined"`
	// DeferredChecks counts submissions acknowledged in degraded mode;
	// CatchUps the batches that later ran their checks; DegradedEnters
	// the transitions into degraded mode.
	DeferredChecks int64 `json:"deferredChecks"`
	CatchUps       int64 `json:"catchUps"`
	DegradedEnters int64 `json:"degradedEnters"`
	// CheckTimeouts and CheckPanics count watchdog aborts.
	CheckTimeouts int64 `json:"checkTimeouts"`
	CheckPanics   int64 `json:"checkPanics"`
	// Degraded and DeferredPending describe the current degraded state;
	// Pending is the number of Submit operations currently in flight.
	Degraded        bool `json:"degraded"`
	DeferredPending int  `json:"deferredPending"`
	Pending         int  `json:"pending"`
}

// Resilience returns a snapshot of the overload-control counters.
func (m *Middleware) Resilience() ResilienceStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return ResilienceStats{
		OverloadShed:    m.res.overloadShed.Load(),
		DeadlineShed:    m.res.deadlineShed.Load(),
		Quarantined:     m.res.quarantined.Load(),
		DeferredChecks:  m.res.deferredChecks.Load(),
		CatchUps:        m.res.catchUps.Load(),
		DegradedEnters:  m.res.degradedEnters.Load(),
		CheckTimeouts:   m.res.checkTimeouts.Load(),
		CheckPanics:     m.res.checkPanics.Load(),
		Degraded:        m.degraded,
		DeferredPending: len(m.deferredQ),
		Pending:         int(m.pending.Load()),
	}
}

// HealthSnapshot returns the health tracker's per-source scores, or nil
// when no tracker is installed.
func (m *Middleware) HealthSnapshot() *health.Snapshot {
	if m.health == nil {
		return nil
	}
	s := m.health.Snapshot()
	return &s
}

// Degraded reports whether consistency checking is currently deferred.
func (m *Middleware) Degraded() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.degraded
}

// admit applies the pending-submit cap before the lock is taken, so a
// full queue sheds in O(1) without joining it. It returns the release
// function that retires this operation from the count.
func (m *Middleware) admit() (release func(), err error) {
	if !m.adm.enabled() {
		return func() {}, nil
	}
	n := m.pending.Add(1)
	if m.adm.MaxPending > 0 && int(n) > m.adm.MaxPending {
		m.pending.Add(-1)
		m.res.overloadShed.Add(1)
		m.tel.shed.With("queue").Inc()
		return nil, fmt.Errorf("queue full (%d pending, cap %d): %w", n-1, m.adm.MaxPending, ErrOverloaded)
	}
	return func() { m.pending.Add(-1) }, nil
}

// gateLocked runs the under-lock admission gates, in order: client
// deadline, source quarantine, degraded-mode entry/exit. All are bypassed
// during recovery replay — the journal only contains submissions that
// passed them live, and replay must not second-guess it.
func (m *Middleware) gateLocked(c *ctx.Context, so SubmitOptions) error {
	if m.replaying {
		return nil
	}
	if !so.Deadline.IsZero() && time.Now().After(so.Deadline) {
		m.res.deadlineShed.Add(1)
		m.tel.shed.With("deadline").Inc()
		return fmt.Errorf("submit %s: client deadline passed before processing began: %w", c.ID, ErrOverloaded)
	}
	if m.health != nil {
		now := m.clock
		if c.Timestamp.After(now) {
			now = c.Timestamp
		}
		if !m.health.Allow(c.Source, now) {
			// Dropped before any state change or journal record, so the
			// quarantine is invisible to recovery.
			m.res.quarantined.Add(1)
			return fmt.Errorf("submit %s: source %q: %w", c.ID, c.Source, ErrQuarantined)
		}
	}
	if m.adm.DegradeAt > 0 {
		pending := int(m.pending.Load())
		switch {
		case !m.degraded && pending >= m.adm.DegradeAt:
			m.degraded = true
			m.res.degradedEnters.Add(1)
			m.tel.degraded.Set(1)
		case m.degraded && pending <= m.adm.resumeAt():
			if err := m.catchUpLocked(m.curSpan); err != nil {
				return err
			}
		}
	}
	return nil
}

// deferredSubmit is one degraded-mode acknowledgement awaiting its check:
// the context plus the logical clock at acknowledgement time, so catch-up
// can replay the expiry sweeps the inline path would have run.
type deferredSubmit struct {
	c     *ctx.Context
	clock time.Time
}

// deferSubmitLocked acknowledges a submission in degraded mode: the
// context is counted, journaled, and queued, but not added to the pool
// and not checked. Journaling the submit record at acknowledgement time
// is sound because a recovery replays it through the eager-checking path,
// which the catch-up equivalence makes identical to what catch-up will
// build.
func (m *Middleware) deferSubmitLocked(c *ctx.Context) error {
	// Duplicates must surface now, exactly as the inline path's pool
	// insertion would have reported them.
	if _, dup := m.pool.Get(c.ID); dup || m.deferredIDs[c.ID] {
		return fmt.Errorf("submit: add %s: %w", c.ID, pool.ErrDuplicate)
	}
	if c.Timestamp.After(m.clock) {
		m.clock = c.Timestamp
	}
	m.stats.Submitted++
	m.tel.submits.Inc()
	m.jAppend(wal.Record{Type: wal.RecordSubmit, Context: c})
	if m.deferredIDs == nil {
		m.deferredIDs = make(map[ctx.ID]bool)
	}
	m.deferredIDs[c.ID] = true
	m.deferredQ = append(m.deferredQ, deferredSubmit{c: c, clock: m.clock})
	m.res.deferredChecks.Add(1)
	m.tel.deferredChecks.Inc()
	return nil
}

// catchUpLocked leaves degraded mode and replays the deferred queue
// through the inline pipeline, in arrival order, sweeping expiry forward
// to each entry's acknowledgement-time clock first — the exact operation
// sequence the always-check path would have executed. A watchdog abort on
// one entry does not stop the rest; the first error is returned.
func (m *Middleware) catchUpLocked(sp *telemetry.Span) error {
	if !m.degraded && len(m.deferredQ) == 0 {
		return nil
	}
	batch := m.deferredQ
	m.deferredQ = nil
	m.deferredIDs = nil
	m.degraded = false
	m.tel.degraded.Set(0)
	if len(batch) == 0 {
		return nil
	}
	m.res.catchUps.Add(1)
	m.tel.catchups.Inc()
	var firstErr error
	for _, d := range batch {
		m.sweepAtLocked(d.clock)
		if _, err := m.processSubmitLocked(d.c, sp, true); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// CatchUp forces any deferred consistency checks to run now. It is a
// no-op when the middleware is not degraded; read operations call the
// same path implicitly.
func (m *Middleware) CatchUp() (err error) {
	opStart := m.tel.now()
	var wait commitWait
	defer m.commitDurable(&wait, &err)
	m.mu.Lock()
	defer m.mu.Unlock()
	sp := m.tel.startSpan("catchup", "", opStart, telemetry.TraceContext{})
	m.curSpan = sp
	defer func() {
		outcome := "caught-up"
		if err != nil {
			outcome = "error"
		}
		m.tel.opDone("catchup", opStart, sp, outcome)
		m.curSpan = nil
	}()
	defer m.journalCommitLocked(&err, &wait)
	if err := m.journalHealthLocked(); err != nil {
		return err
	}
	return m.catchUpLocked(sp)
}

// observeHealthLocked feeds one submission's check outcome to the health
// tracker.
func (m *Middleware) observeHealthLocked(c *ctx.Context, detected int) {
	if m.health == nil {
		return
	}
	o := health.OK
	if detected > 0 {
		o = health.Inconsistent
	}
	m.health.Observe(c.Source, o, m.clock)
}

// checkOutcome is the result of one consistency-check computation.
type checkOutcome struct {
	vios     []constraint.Violation
	rep      constraint.CheckReport
	parallel bool
}

// checkComputeLocked snapshots everything the consistency check needs
// while the lock is held and returns a closure that computes the check
// without touching shared middleware state, so the watchdog can abandon
// it mid-flight: an abandoned closure keeps evaluating over its immutable
// universe copy, writes its result into a buffered channel nobody reads,
// and exits.
func (m *Middleware) checkComputeLocked(c *ctx.Context) func() checkOutcome {
	if m.checkOpts.Parallelism <= 1 {
		u := m.pool.CheckingUniverse()
		return func() checkOutcome {
			return checkOutcome{vios: m.checker.CheckAddition(u, c)}
		}
	}
	if m.checkKinds == nil {
		m.checkKinds = m.checker.Kinds()
	}
	u, pruned := m.pool.CheckingUniverseFor(m.checkKinds)
	workers := m.checkOpts.Parallelism
	return func() checkOutcome {
		vios, rep := m.checker.CheckAdditionParallelReport(u, c, workers)
		rep.BindingsPruned += pruned
		return checkOutcome{vios: vios, rep: rep, parallel: true}
	}
}

// applyCheckLocked folds a completed check's work-distribution report
// into stats. The split from checkComputeLocked matters: only the
// operation that still holds the lock may touch stats, never a check the
// watchdog abandoned.
func (m *Middleware) applyCheckLocked(out checkOutcome) []constraint.Violation {
	if out.parallel {
		m.stats.Shards += out.rep.ShardsDispatched
		m.stats.PrunedBindings += out.rep.BindingsPruned
		m.tel.shards.Add(uint64(out.rep.ShardsDispatched))
		m.tel.pruned.Add(uint64(out.rep.BindingsPruned))
		if m.hooks.OnCheck != nil {
			m.hooks.OnCheck(out.rep)
		}
	}
	return out.vios
}

// checkGuardedLocked runs the consistency check for one addition — under
// the watchdog when one is configured, inline otherwise. With
// Parallelism > 1 the check snapshots the checking buffer through the
// pool's kind index and fans out across the worker pool; both paths
// yield identical violations.
func (m *Middleware) checkGuardedLocked(c *ctx.Context) ([]constraint.Violation, error) {
	compute := m.checkComputeLocked(c)
	if m.wd.CheckTimeout <= 0 {
		return m.applyCheckLocked(compute()), nil
	}
	type result struct {
		out      checkOutcome
		panicked any
	}
	ch := make(chan result, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- result{panicked: p}
			}
		}()
		ch <- result{out: compute()}
	}()
	timer := time.NewTimer(m.wd.CheckTimeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.panicked != nil {
			return nil, fmt.Errorf("consistency check panicked: %v: %w", res.panicked, ErrCheckFailed)
		}
		return m.applyCheckLocked(res.out), nil
	case <-timer.C:
		return nil, fmt.Errorf("consistency check exceeded the %v watchdog: %w", m.wd.CheckTimeout, ErrCheckTimeout)
	}
}

// resolveAdditionLocked consults the strategy about an addition, with
// panic containment when the watchdog is armed.
func (m *Middleware) resolveAdditionLocked(c *ctx.Context, vios []constraint.Violation) (out strategy.Outcome, err error) {
	if m.wd.CheckTimeout > 0 {
		defer func() {
			if p := recover(); p != nil {
				out = strategy.Outcome{}
				err = fmt.Errorf("strategy %s OnAddition panicked: %v: %w", m.strat.Name(), p, ErrCheckFailed)
			}
		}()
	}
	return m.strat.OnAddition(c, vios), nil
}

// resolveUseLocked consults the strategy about a use, with panic
// containment when the watchdog is armed.
func (m *Middleware) resolveUseLocked(c *ctx.Context) (usable bool, out strategy.Outcome, err error) {
	if m.wd.CheckTimeout > 0 {
		defer func() {
			if p := recover(); p != nil {
				usable, out = false, strategy.Outcome{}
				err = fmt.Errorf("strategy %s OnUse panicked: %v: %w", m.strat.Name(), p, ErrCheckFailed)
			}
		}()
	}
	usable, out = m.strat.OnUse(c)
	return usable, out, nil
}

// rollbackSubmitLocked unwinds a submission whose check or resolution the
// watchdog aborted. For an inline submission nothing was counted or
// journaled yet (the fallible stages run first), so removing the context
// from the pool and journaling a check-fail annotation restores exactly
// the state a recovery would reconstruct. For a deferred submission the
// submit record is already committed, so the journal is fail-stopped
// rather than left claiming a context the live state dropped.
func (m *Middleware) rollbackSubmitLocked(c *ctx.Context, deferred bool, cause error) error {
	_ = m.pool.Remove(c.ID)
	m.deltaMark(c.Kind)
	m.jAppend(wal.Record{Type: wal.RecordCheckFail, ID: c.ID, Reason: cause.Error()})
	if errors.Is(cause, ErrCheckTimeout) {
		m.res.checkTimeouts.Add(1)
		m.tel.checkAborts.With("timeout").Inc()
	} else {
		m.res.checkPanics.Add(1)
		m.tel.checkAborts.With("panic").Inc()
	}
	if deferred {
		m.stats.Submitted--
		if m.journal != nil && m.journalErr == nil {
			m.journalErr = fmt.Errorf("deferred submission %s aborted after its record was journaled: %v", c.ID, cause)
		}
	}
	return fmt.Errorf("submit %s: %w", c.ID, cause)
}

// dropBufferedRecordLocked removes the newest queued-but-uncommitted
// record of the given type and ID from the operation's journal buffer
// (the use-path rollback: the use record is queued before the strategy
// runs, and an aborted strategy must not leave it behind).
func (m *Middleware) dropBufferedRecordLocked(typ wal.RecordType, id ctx.ID) {
	for i := len(m.jbuf) - 1; i >= 0; i-- {
		if m.jbuf[i].Type == typ && m.jbuf[i].ID == id {
			m.jbuf = append(m.jbuf[:i], m.jbuf[i+1:]...)
			return
		}
	}
}

// submitErrOutcome maps a submit error to its span outcome label.
func submitErrOutcome(err error) string {
	switch {
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrQuarantined):
		return "quarantined"
	case errors.Is(err, ErrCheckTimeout):
		return "check-timeout"
	case errors.Is(err, ErrCheckFailed):
		return "check-panic"
	default:
		return "error"
	}
}
