package middleware

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ctxres/internal/ctx"
	"ctxres/internal/strategy"
)

// TestConcurrentSubmitUseAdvance hammers one middleware from many
// goroutines — submissions, uses, clock advances, and stats reads — while
// the parallel checker fans each consistency check out over its own worker
// pool. Run under `go test -race` (the Makefile's race target does) to
// prove the parallel evaluator shares snapshots without data races.
func TestConcurrentSubmitUseAdvance(t *testing.T) {
	const (
		goroutines = 8
		perG       = 30
	)
	m := New(velocityChecker(t, 2, 1.5), strategy.NewDropBad(),
		WithCheckerOptions(CheckerOptions{Parallelism: 4}))

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			subject := fmt.Sprintf("walker-%d", g)
			x := 0.0
			for i := 0; i < perG; i++ {
				x += 1
				if i%5 == 4 {
					x += 10 // corruption: velocity jump, guaranteed violations
				}
				at := t0.Add(time.Duration(i) * time.Second)
				c := ctx.NewLocation(subject, at, ctx.Point{X: x},
					ctx.WithID(ctx.ID(fmt.Sprintf("s%d-%03d", g, i))),
					ctx.WithSeq(uint64(i+1)), ctx.WithSource("stress"))
				if _, err := m.Submit(c); err != nil {
					t.Errorf("goroutine %d submit %d: %v", g, i, err)
					return
				}
				if i%3 == 0 {
					// Discarded/inconsistent/expired are legitimate
					// strategy outcomes under contention; only unknown
					// contexts would indicate lost submissions.
					if _, err := m.Use(c.ID); errors.Is(err, ErrNotFound) {
						t.Errorf("goroutine %d: submitted context %s vanished: %v", g, c.ID, err)
						return
					}
				}
				if i%7 == 0 {
					m.AdvanceTo(at)
				}
				if i%11 == 0 {
					_ = m.Stats()
					_ = m.Pool().Stats()
				}
			}
		}(g)
	}
	wg.Wait()

	st := m.Stats()
	if st.Submitted != goroutines*perG {
		t.Fatalf("Submitted = %d, want %d", st.Submitted, goroutines*perG)
	}
	if st.Shards == 0 {
		t.Fatal("parallel checker dispatched no shards")
	}
	if st.Detected == 0 {
		t.Fatal("no inconsistencies detected despite injected jumps")
	}
	// The pool's kind index must agree with the authoritative checking view.
	checking := m.Pool().Checking()
	indexed := m.Pool().CheckingOfKind(ctx.KindLocation)
	if len(checking) != len(indexed) {
		t.Fatalf("kind index has %d location contexts, checking view has %d",
			len(indexed), len(checking))
	}
}

// TestParallelMiddlewareMatchesSerial replays the same deterministic stream
// through a serial and a parallel middleware and asserts identical stats
// and identical surviving pools — the end-to-end determinism guarantee.
func TestParallelMiddlewareMatchesSerial(t *testing.T) {
	run := func(parallelism int) (Stats, []ctx.ID) {
		m := New(velocityChecker(t, 2, 1.5), strategy.NewDropBad(),
			WithCheckerOptions(CheckerOptions{Parallelism: parallelism}))
		x := 0.0
		for i := 0; i < 40; i++ {
			x += 1
			if i%4 == 3 {
				x += 8
			}
			c := loc(fmt.Sprintf("m-%03d", i), uint64(i+1), x)
			if _, err := m.Submit(c); err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			if i%2 == 1 {
				_, _ = m.Use(c.ID)
			}
		}
		st := m.Stats()
		st.Shards, st.PrunedBindings = 0, 0 // bookkeeping differs by design
		var avail []ctx.ID
		for _, c := range m.Pool().Available() {
			avail = append(avail, c.ID)
		}
		return st, avail
	}

	serialStats, serialAvail := run(0)
	for _, par := range []int{2, 4, 8} {
		gotStats, gotAvail := run(par)
		if gotStats != serialStats {
			t.Fatalf("parallelism %d stats = %+v, serial %+v", par, gotStats, serialStats)
		}
		if len(gotAvail) != len(serialAvail) {
			t.Fatalf("parallelism %d available %v, serial %v", par, gotAvail, serialAvail)
		}
		for i := range gotAvail {
			if gotAvail[i] != serialAvail[i] {
				t.Fatalf("parallelism %d available %v, serial %v", par, gotAvail, serialAvail)
			}
		}
	}
}
