package middleware

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ctxres/internal/ctx"
	"ctxres/internal/strategy"
	"ctxres/internal/telemetry"
	"ctxres/internal/wal"
)

// memSink collects spans in memory.
type memSink struct {
	mu    sync.Mutex
	spans []*telemetry.Span
}

func (s *memSink) RecordSpan(sp *telemetry.Span) {
	s.mu.Lock()
	s.spans = append(s.spans, sp)
	s.mu.Unlock()
}

func (s *memSink) byOp(op string) []*telemetry.Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*telemetry.Span
	for _, sp := range s.spans {
		if sp.Op == op {
			out = append(out, sp)
		}
	}
	return out
}

// sumByPrefix totals every counter series of one vec family, e.g. all
// ctxres_discards_total{reason=...} series.
func sumByPrefix(snap *telemetry.Snapshot, name string) float64 {
	var sum float64
	for key, v := range snap.Counters {
		if key == name || strings.HasPrefix(key, name+"{") {
			sum += v
		}
	}
	return sum
}

// TestTelemetryCountersMatchStats drives a journaled, parallel-checked
// middleware through a deterministic stream and asserts the acceptance
// criterion that the telemetry counters agree exactly with the Stats
// snapshot (the stats op's numbers), that every pipeline stage histogram
// observed something, and that spans carry the stage breakdown.
func TestTelemetryCountersMatchStats(t *testing.T) {
	reg := telemetry.NewRegistry()
	sink := &memSink{}
	j, err := wal.Open(wal.Options{
		Dir:      t.TempDir(),
		Fsync:    wal.FsyncAlways,
		Observer: NewWALObserver(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	m := New(velocityChecker(t, 2, 1.5), strategy.NewDropLatest(),
		WithCheckerOptions(CheckerOptions{Parallelism: 2}),
		WithTelemetry(reg),
		WithSpanSink(sink),
		WithJournal(j))
	defer m.CloseJournal()

	x := 0.0
	for i := 0; i < 40; i++ {
		x += 1
		if i%4 == 3 {
			x += 8 // velocity jump: guaranteed violations
		}
		c := loc(fmt.Sprintf("t-%03d", i), uint64(i+1), x)
		if _, err := m.Submit(c); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if i%2 == 1 {
			_, _ = m.Use(c.ID)
		}
	}
	if _, err := m.UseLatest(ctx.KindLocation, "peter"); err != nil &&
		!errors.Is(err, ErrInconsistent) && !errors.Is(err, ErrNotFound) {
		t.Fatalf("use latest: %v", err)
	}
	if _, err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	st := m.Stats()
	snap := reg.Snapshot()
	for _, tc := range []struct {
		name string
		want int
	}{
		{"ctxres_submits_total", st.Submitted},
		{"ctxres_detected_total", st.Detected},
		{"ctxres_delivered_total", st.Delivered},
		{"ctxres_rejected_total", st.Rejected},
		{"ctxres_expired_total", st.Expired},
		{"ctxres_situations_total", st.Situations},
		{"ctxres_check_shards_total", st.Shards},
		{"ctxres_check_pruned_bindings_total", st.PrunedBindings},
		{"ctxres_compactions_total", st.Compactions},
		{"ctxres_compact_removed_total", st.CompactRemoved},
		{"ctxres_discards_total", st.Discarded},
	} {
		if got := sumByPrefix(snap, tc.name); got != float64(tc.want) {
			t.Errorf("%s = %v, stats say %d", tc.name, got, tc.want)
		}
	}
	if st.Detected == 0 || st.Discarded == 0 {
		t.Fatalf("stream produced no work: %+v", st)
	}
	if got := sumByPrefix(snap, "ctxres_violations_total"); got != float64(st.Detected) {
		t.Errorf("violations by constraint sum to %v, want %d", got, st.Detected)
	}

	// Every pipeline stage histogram must have observations.
	for _, stage := range []string{"check", "resolve", "journal_append"} {
		key := fmt.Sprintf("ctxres_stage_seconds{stage=%q}", stage)
		if hs, ok := snap.Histograms[key]; !ok || hs.Count == 0 {
			t.Errorf("stage histogram %s empty (%+v)", key, hs)
		}
	}
	for _, op := range []string{"submit", "use", "use_latest", "compact"} {
		key := fmt.Sprintf("ctxres_op_seconds{op=%q}", op)
		if hs, ok := snap.Histograms[key]; !ok || hs.Count == 0 {
			t.Errorf("op histogram %s empty (%+v)", key, hs)
		}
	}
	// The WAL observer fed the journal histograms.
	for _, name := range []string{"ctxres_wal_append_seconds", "ctxres_wal_fsync_seconds", "ctxres_wal_snapshot_seconds"} {
		if hs, ok := snap.Histograms[name]; !ok || hs.Count == 0 {
			t.Errorf("wal histogram %s empty (%+v)", name, hs)
		}
	}
	if got := sumByPrefix(snap, "ctxres_wal_appended_bytes_total"); got == 0 {
		t.Error("no WAL bytes recorded")
	}

	// Spans: one per submit, each with check, resolve, and journal stages
	// (the journal stage is attached by the deferred commit, proving the
	// defer ordering).
	submits := sink.byOp("submit")
	if len(submits) != st.Submitted {
		t.Fatalf("%d submit spans, want %d", len(submits), st.Submitted)
	}
	stages := map[telemetry.Stage]bool{}
	for _, sp := range submits {
		for _, s := range sp.Stages {
			stages[s.Stage] = true
		}
		if sp.Outcome == "" || sp.Seconds <= 0 {
			t.Fatalf("span missing outcome/duration: %+v", sp)
		}
	}
	for _, want := range []telemetry.Stage{telemetry.StageCheck, telemetry.StageResolve, telemetry.StageJournal} {
		if !stages[want] {
			t.Errorf("no submit span carries stage %q", want)
		}
	}

	// The exposition of everything above must be well-formed.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

// TestTelemetryRaceStress hammers an instrumented middleware from many
// goroutines with the parallel checker at parallelism 8 while a scraper
// renders and validates the exposition — the acceptance criterion for
// the race detector (the Makefile race target runs this package).
func TestTelemetryRaceStress(t *testing.T) {
	reg := telemetry.NewRegistry()
	sink := &memSink{}
	m := New(velocityChecker(t, 2, 1.5), strategy.NewDropBad(),
		WithCheckerOptions(CheckerOptions{Parallelism: 8}),
		WithTelemetry(reg),
		WithSpanSink(sink))

	const goroutines = 8
	const perG = 25
	var writers, scraper sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			subject := fmt.Sprintf("walker-%d", g)
			x := 0.0
			for i := 0; i < perG; i++ {
				x += 1
				if i%5 == 4 {
					x += 10
				}
				at := t0.Add(time.Duration(i) * time.Second)
				c := ctx.NewLocation(subject, at, ctx.Point{X: x},
					ctx.WithID(ctx.ID(fmt.Sprintf("r%d-%03d", g, i))),
					ctx.WithSeq(uint64(i+1)), ctx.WithSource("stress"))
				if _, err := m.Submit(c); err != nil {
					t.Errorf("goroutine %d submit %d: %v", g, i, err)
					return
				}
				if i%3 == 0 {
					_, _ = m.Use(c.ID)
				}
			}
		}(g)
	}
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
			if err := telemetry.ValidateExposition(buf.Bytes()); err != nil {
				t.Errorf("scrape under load invalid: %v", err)
				return
			}
			_ = reg.Snapshot()
			_ = m.SigmaSize()
			_ = m.JournalErr()
		}
	}()
	writers.Wait()
	close(stop)
	scraper.Wait()

	st := m.Stats()
	snap := reg.Snapshot()
	if got := sumByPrefix(snap, "ctxres_submits_total"); got != float64(st.Submitted) {
		t.Fatalf("submits counter %v, stats %d", got, st.Submitted)
	}
	if got := sumByPrefix(snap, "ctxres_delivered_total"); got != float64(st.Delivered) {
		t.Fatalf("delivered counter %v, stats %d", got, st.Delivered)
	}
	if len(sink.byOp("submit")) != st.Submitted {
		t.Fatalf("%d submit spans, want %d", len(sink.byOp("submit")), st.Submitted)
	}
}
