// Package rfid simulates RFID deployments and the data anomalies that
// motivate the paper's second application: readers with limited range
// observe tags and produce read events that suffer missed reads (false
// negatives), cross reads (a tag heard by a neighbouring zone's reader) and
// ghost reads (spurious detections of absent tags) — the anomaly classes of
// Jeffery et al. and Rao et al. (VLDB 2006), which the paper cites for its
// real-life RFID error rates.
package rfid

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"ctxres/internal/ctx"
)

// Field names carried by rfid.read contexts.
const (
	FieldTag    = "tag"
	FieldReader = "reader"
	FieldZone   = "zone"
)

// Tag is a tagged object (or badge) at a position.
type Tag struct {
	ID  string
	Pos ctx.Point
}

// Reader is a fixed RFID reader covering a circular range around its
// position, labelled with the zone it monitors.
type Reader struct {
	ID    string
	Zone  string
	Pos   ctx.Point
	Range float64
}

// Covers reports whether the reader's range includes p.
func (r Reader) Covers(p ctx.Point) bool { return r.Pos.Dist(p) <= r.Range }

// AnomalyRates configures the error behaviour of a read cycle.
type AnomalyRates struct {
	// Miss is the per-(reader,tag) probability that a covered tag is not
	// read (false negative).
	Miss float64
	// Ghost is the per-reader probability of one spurious read of a
	// random tag that the reader does not cover.
	Ghost float64
}

// Deployment is a set of readers and tags.
type Deployment struct {
	readers []Reader
	tags    map[string]*Tag
	order   []string // tag insertion order for determinism
}

// Deployment errors.
var (
	ErrNoReader   = errors.New("deployment needs at least one reader")
	ErrUnknownTag = errors.New("unknown tag")
	ErrDupTag     = errors.New("tag already deployed")
)

// NewDeployment builds a deployment with the given readers.
func NewDeployment(readers []Reader) (*Deployment, error) {
	if len(readers) == 0 {
		return nil, ErrNoReader
	}
	return &Deployment{
		readers: append([]Reader(nil), readers...),
		tags:    make(map[string]*Tag),
	}, nil
}

// ShelfDeployment builds the canonical test deployment: n readers in a row
// with the given pitch, each covering a circle of the given radius, with
// zones named zone-1…zone-n.
func ShelfDeployment(n int, pitch, radius float64) (*Deployment, error) {
	if n <= 0 {
		return nil, ErrNoReader
	}
	readers := make([]Reader, n)
	for i := range readers {
		readers[i] = Reader{
			ID:    fmt.Sprintf("reader-%d", i+1),
			Zone:  fmt.Sprintf("zone-%d", i+1),
			Pos:   ctx.Point{X: float64(i) * pitch, Y: 0},
			Range: radius,
		}
	}
	return NewDeployment(readers)
}

// Readers returns the deployed readers (copy).
func (d *Deployment) Readers() []Reader { return append([]Reader(nil), d.readers...) }

// AddTag places a new tag.
func (d *Deployment) AddTag(id string, pos ctx.Point) error {
	if _, dup := d.tags[id]; dup {
		return fmt.Errorf("%w: %s", ErrDupTag, id)
	}
	d.tags[id] = &Tag{ID: id, Pos: pos}
	d.order = append(d.order, id)
	return nil
}

// MoveTag relocates an existing tag.
func (d *Deployment) MoveTag(id string, pos ctx.Point) error {
	tag, ok := d.tags[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTag, id)
	}
	tag.Pos = pos
	return nil
}

// TagPos returns a tag's current position.
func (d *Deployment) TagPos(id string) (ctx.Point, bool) {
	tag, ok := d.tags[id]
	if !ok {
		return ctx.Point{}, false
	}
	return tag.Pos, true
}

// TrueZone returns the zone of the nearest reader covering the tag, or ""
// if no reader covers it — the ground truth a read event should report.
func (d *Deployment) TrueZone(id string) string {
	tag, ok := d.tags[id]
	if !ok {
		return ""
	}
	best := ""
	bestDist := math.Inf(1)
	for _, r := range d.readers {
		if dist := r.Pos.Dist(tag.Pos); dist <= r.Range && dist < bestDist {
			best = r.Zone
			bestDist = dist
		}
	}
	return best
}

// ReadCycle simulates one inventory round at the given logical time: every
// reader attempts to read every tag it covers (subject to the miss rate)
// and may produce ghost reads (subject to the ghost rate). Each read event
// becomes an rfid.read context whose Truth records whether the event is
// anomalous (ghost reads are corrupted; clean reads are expected).
func (d *Deployment) ReadCycle(at time.Time, rates AnomalyRates, rng *rand.Rand, opts ...ctx.Option) []*ctx.Context {
	var out []*ctx.Context
	for _, r := range d.readers {
		for _, id := range d.order {
			tag := d.tags[id]
			if !r.Covers(tag.Pos) {
				continue
			}
			if rng.Float64() < rates.Miss {
				continue // missed read
			}
			out = append(out, d.readContext(r, tag.ID, at, false, opts...))
		}
		if rates.Ghost > 0 && rng.Float64() < rates.Ghost {
			if ghost := d.randomUncoveredTag(r, rng); ghost != "" {
				out = append(out, d.readContext(r, ghost, at, true, opts...))
			}
		}
	}
	return out
}

func (d *Deployment) readContext(r Reader, tagID string, at time.Time, ghost bool, opts ...ctx.Option) *ctx.Context {
	fields := map[string]ctx.Value{
		FieldTag:    ctx.String(tagID),
		FieldReader: ctx.String(r.ID),
		FieldZone:   ctx.String(r.Zone),
	}
	opts = append([]ctx.Option{
		ctx.WithSubject(tagID),
		ctx.WithSource(r.ID),
	}, opts...)
	c := ctx.New(ctx.KindRFIDRead, at, fields, opts...)
	if ghost {
		c.Truth.Corrupted = true
	}
	return c
}

func (d *Deployment) randomUncoveredTag(r Reader, rng *rand.Rand) string {
	var candidates []string
	for _, id := range d.order {
		if !r.Covers(d.tags[id].Pos) {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) == 0 {
		return ""
	}
	return candidates[rng.Intn(len(candidates))]
}

// ReadZone extracts the zone a read context reports.
func ReadZone(c *ctx.Context) (string, bool) {
	if c == nil || c.Kind != ctx.KindRFIDRead {
		return "", false
	}
	return c.StrField(FieldZone)
}

// ReadTag extracts the tag a read context reports.
func ReadTag(c *ctx.Context) (string, bool) {
	if c == nil || c.Kind != ctx.KindRFIDRead {
		return "", false
	}
	return c.StrField(FieldTag)
}
