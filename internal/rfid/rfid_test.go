package rfid

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"ctxres/internal/ctx"
)

var t0 = time.Date(2008, 6, 17, 9, 0, 0, 0, time.UTC)

func shelf(t *testing.T) *Deployment {
	t.Helper()
	d, err := ShelfDeployment(3, 10, 4) // zones at x=0,10,20; radius 4
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestShelfDeploymentLayout(t *testing.T) {
	d := shelf(t)
	rs := d.Readers()
	if len(rs) != 3 {
		t.Fatalf("readers = %d", len(rs))
	}
	if rs[0].Zone != "zone-1" || rs[2].Pos.X != 20 {
		t.Fatalf("layout wrong: %+v", rs)
	}
	if _, err := ShelfDeployment(0, 1, 1); !errors.Is(err, ErrNoReader) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewDeployment(nil); !errors.Is(err, ErrNoReader) {
		t.Fatalf("err = %v", err)
	}
}

func TestTagManagement(t *testing.T) {
	d := shelf(t)
	if err := d.AddTag("T1", ctx.Point{X: 0, Y: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddTag("T1", ctx.Point{}); !errors.Is(err, ErrDupTag) {
		t.Fatalf("err = %v", err)
	}
	if err := d.MoveTag("T1", ctx.Point{X: 10, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if err := d.MoveTag("ghost", ctx.Point{}); !errors.Is(err, ErrUnknownTag) {
		t.Fatalf("err = %v", err)
	}
	pos, ok := d.TagPos("T1")
	if !ok || pos != (ctx.Point{X: 10, Y: 0}) {
		t.Fatalf("TagPos = %v, %v", pos, ok)
	}
	if _, ok := d.TagPos("ghost"); ok {
		t.Fatal("ghost tag found")
	}
}

func TestTrueZone(t *testing.T) {
	d := shelf(t)
	if err := d.AddTag("T1", ctx.Point{X: 1, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if z := d.TrueZone("T1"); z != "zone-1" {
		t.Fatalf("TrueZone = %q", z)
	}
	if err := d.AddTag("far", ctx.Point{X: 100, Y: 100}); err != nil {
		t.Fatal(err)
	}
	if z := d.TrueZone("far"); z != "" {
		t.Fatalf("TrueZone(far) = %q", z)
	}
	if z := d.TrueZone("ghost"); z != "" {
		t.Fatalf("TrueZone(ghost) = %q", z)
	}
	// A tag between zones belongs to the nearest covering reader.
	if err := d.AddTag("mid", ctx.Point{X: 7, Y: 0}); err != nil {
		t.Fatal(err) // covers: zone-1 at dist 7 > 4 no; zone-2 at dist 3 yes
	}
	if z := d.TrueZone("mid"); z != "zone-2" {
		t.Fatalf("TrueZone(mid) = %q", z)
	}
}

func TestReadCycleCleanReads(t *testing.T) {
	d := shelf(t)
	if err := d.AddTag("T1", ctx.Point{X: 0, Y: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddTag("T2", ctx.Point{X: 10, Y: 1}); err != nil {
		t.Fatal(err)
	}
	reads := d.ReadCycle(t0, AnomalyRates{}, rand.New(rand.NewSource(1)))
	if len(reads) != 2 {
		t.Fatalf("reads = %d", len(reads))
	}
	for _, r := range reads {
		if r.Truth.Corrupted {
			t.Fatalf("clean read marked corrupted: %v", r)
		}
		if r.Kind != ctx.KindRFIDRead {
			t.Fatalf("kind = %v", r.Kind)
		}
		zone, ok := ReadZone(r)
		if !ok {
			t.Fatal("no zone")
		}
		tag, _ := ReadTag(r)
		if want := d.TrueZone(tag); zone != want {
			t.Fatalf("zone = %q, want %q", zone, want)
		}
	}
}

func TestReadCycleMissRate(t *testing.T) {
	d := shelf(t)
	if err := d.AddTag("T1", ctx.Point{X: 0, Y: 1}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	total := 0
	for i := 0; i < 1000; i++ {
		total += len(d.ReadCycle(t0, AnomalyRates{Miss: 0.3}, rng))
	}
	// Expect ≈700 reads out of 1000 cycles.
	if total < 600 || total > 800 {
		t.Fatalf("reads = %d, want ≈700", total)
	}
	// Miss=1 silences everything.
	if got := d.ReadCycle(t0, AnomalyRates{Miss: 1}, rng); len(got) != 0 {
		t.Fatalf("reads = %v with Miss=1", got)
	}
}

func TestReadCycleGhostReads(t *testing.T) {
	d := shelf(t)
	if err := d.AddTag("T1", ctx.Point{X: 0, Y: 1}); err != nil { // zone-1 only
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	ghosts := 0
	for i := 0; i < 500; i++ {
		for _, r := range d.ReadCycle(t0, AnomalyRates{Ghost: 0.5}, rng) {
			if r.Truth.Corrupted {
				ghosts++
				zone, _ := ReadZone(r)
				if zone == "zone-1" {
					t.Fatal("ghost read from the covering reader")
				}
			}
		}
	}
	// Two non-covering readers × 500 cycles × 0.5 ≈ 500 ghosts.
	if ghosts < 350 || ghosts > 650 {
		t.Fatalf("ghosts = %d, want ≈500", ghosts)
	}
}

func TestReadCycleGhostNoCandidates(t *testing.T) {
	// Single reader covering the only tag: no ghost candidates exist.
	d, err := ShelfDeployment(1, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddTag("T1", ctx.Point{X: 0, Y: 1}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		for _, r := range d.ReadCycle(t0, AnomalyRates{Ghost: 1}, rng) {
			if r.Truth.Corrupted {
				t.Fatal("ghost read without candidates")
			}
		}
	}
}

func TestReadHelpersRejectWrongKind(t *testing.T) {
	locCtx := ctx.NewLocation("p", t0, ctx.Point{})
	if _, ok := ReadZone(locCtx); ok {
		t.Fatal("location accepted")
	}
	if _, ok := ReadTag(nil); ok {
		t.Fatal("nil accepted")
	}
}

func TestReaderCovers(t *testing.T) {
	r := Reader{Pos: ctx.Point{X: 0, Y: 0}, Range: 5}
	if !r.Covers(ctx.Point{X: 3, Y: 4}) {
		t.Fatal("boundary rejected")
	}
	if r.Covers(ctx.Point{X: 4, Y: 4}) {
		t.Fatal("outside accepted")
	}
}
