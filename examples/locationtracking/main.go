// Location tracking: the Section 5.2 case study end to end. A walker tours
// an office floor; the LANDMARC substrate estimates his position from noisy
// RFID signal strengths; gross errors are injected at a 20% rate; the
// drop-bad strategy cleans the stream. The example reports tracking
// accuracy with and without resolution, plus the survival/precision
// measures the paper gives (96.5% / 84.7%).
//
//	go run ./examples/locationtracking
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ctxres/internal/apps/callforward"
	"ctxres/internal/constraint"
	"ctxres/internal/ctx"
	"ctxres/internal/errmodel"
	"ctxres/internal/landmarc"
	"ctxres/internal/metrics"
	"ctxres/internal/middleware"
	"ctxres/internal/simspace"
	"ctxres/internal/strategy"
)

const (
	steps     = 300
	errRate   = 0.2
	seed      = 42
	velLimit  = 3.0 // m/s, sized for tracking noise
	sampleGap = 2 * time.Second
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(seed))
	floor := simspace.OfficeFloor()
	walker := callforward.Walk(floor)

	// LANDMARC deployment: readers at the corners, reference tags on a
	// 2 m grid, k=4 neighbours.
	radio := landmarc.DefaultRadio()
	radio.ShadowSigma = 1.0
	field, err := landmarc.GridField(floor.Width, floor.Height, 2, radio, 4)
	if err != nil {
		return err
	}
	fmt.Printf("LANDMARC field: %d readers, %d reference tags, k=%d\n",
		len(field.Readers()), len(field.RefTags()), field.K())

	injector, err := errmodel.NewInjector(errRate, rng)
	if err != nil {
		return err
	}
	injector.Register(ctx.KindLocation, errmodel.LocationJump(12, 30))

	checker := constraint.NewChecker()
	for _, reach := range []uint64{1, 2} {
		r := reach
		checker.MustRegister(&constraint.Constraint{
			Name: fmt.Sprintf("velocity-reach-%d", r),
			Formula: constraint.Forall("a", ctx.KindLocation,
				constraint.Forall("b", ctx.KindLocation,
					constraint.Implies(
						constraint.And(
							constraint.SameSubject("a", "b"),
							constraint.StreamWithin("a", "b", r),
						),
						constraint.VelocityBelow("a", "b", velLimit)))),
		})
	}

	collector := metrics.NewCollector()
	mw := middleware.New(checker, strategy.NewDropBad(),
		middleware.WithHooks(collector.Hooks()))

	start := time.Date(2008, 6, 17, 9, 0, 0, 0, time.UTC)
	var (
		window     []*ctx.Context // submitted, not yet used
		truths     = map[ctx.ID]ctx.Point{}
		rawErrSum  float64 // estimation error without any cleaning
		rawErrN    int
		usedErrSum float64 // estimation error over delivered contexts
		usedErrN   int
	)

	useOldest := func() {
		if len(window) == 0 {
			return
		}
		c := window[0]
		window = window[1:]
		delivered, err := mw.Use(c.ID)
		if err != nil {
			return // discarded by the strategy
		}
		if p, ok := ctx.LocationPoint(delivered); ok {
			usedErrSum += p.Dist(truths[delivered.ID])
			usedErrN++
		}
	}

	for i := 0; i < steps; i++ {
		at := start.Add(time.Duration(i) * sampleGap)
		truth := walker.PositionAt(at.Sub(start))
		est := field.Estimate(truth, rng)
		c := ctx.NewLocation("peter", at, est,
			ctx.WithSource("landmarc"), ctx.WithSeq(uint64(i+1)))
		injector.Apply(c)
		truths[c.ID] = truth
		if p, ok := ctx.LocationPoint(c); ok {
			rawErrSum += p.Dist(truth)
			rawErrN++
		}
		if _, err := mw.Submit(c); err != nil {
			return err
		}
		window = append(window, c)
		if len(window) > 2 { // the resolution window
			useOldest()
		}
	}
	for len(window) > 0 {
		useOldest()
	}

	fmt.Printf("\ntracked %d samples at %.0f%% injected error rate\n", steps, errRate*100)
	fmt.Printf("  mean error, raw stream (no resolution): %6.2f m\n", rawErrSum/float64(rawErrN))
	fmt.Printf("  mean error, delivered after drop-bad:   %6.2f m\n", usedErrSum/float64(usedErrN))
	fmt.Printf("  context survival rate: %5.1f%%   (paper: 96.5%%)\n", collector.SurvivalRate()*100)
	fmt.Printf("  removal precision:     %5.1f%%   (paper: 84.7%%)\n", collector.RemovalPrecision()*100)
	fmt.Printf("  removal recall:        %5.1f%%\n", collector.RemovalRecall()*100)
	return nil
}
