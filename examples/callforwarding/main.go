// Call Forwarding: the full application loop over the network daemon. A
// badge-tracker source submits Peter's (noisy) locations to a middleware
// daemon over TCP; the application side uses contexts and reacts to
// situation changes by re-routing Peter's incoming calls — desk phone in
// his office, voicemail in the meeting room, nearest phone elsewhere.
//
//	go run ./examples/callforwarding
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ctxres/internal/apps/callforward"
	"ctxres/internal/daemon"
	"ctxres/internal/middleware"
	"ctxres/internal/simspace"
	"ctxres/internal/strategy"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	floor := simspace.OfficeFloor()
	engine := callforward.Engine(floor)
	mw := middleware.New(callforward.Checker(floor), strategy.NewDropBad(),
		middleware.WithSituations(engine))

	srv, err := daemon.Serve("127.0.0.1:0", mw, engine)
	if err != nil {
		return err
	}
	defer srv.Shutdown()
	fmt.Printf("middleware daemon on %s (drop-bad strategy)\n\n", srv.Addr())

	// The badge-tracker source and the application are separate clients,
	// as they would be in a deployed system.
	source, err := daemon.Dial(srv.Addr().String(), 5*time.Second)
	if err != nil {
		return err
	}
	defer source.Close()
	app, err := daemon.Dial(srv.Addr().String(), 5*time.Second)
	if err != nil {
		return err
	}
	defer app.Close()

	cfg := callforward.DefaultWorkload(0.2) // 20% error rate
	cfg.Steps = 120
	stream, err := callforward.Generate(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		return err
	}

	routing := "unknown"
	route := func(active map[string]bool) string {
		switch {
		case active["cf-in-meeting"]:
			return "voicemail (in meeting)"
		case active["cf-at-desk"]:
			return "desk phone (in office)"
		case active["cf-reachable"]:
			return "nearest phone (in building)"
		default:
			return "mobile (away)"
		}
	}

	detected := 0
	for i, c := range stream {
		vios, err := source.Submit(c)
		if err != nil {
			return fmt.Errorf("submit step %d: %w", i, err)
		}
		detected += len(vios)

		// The application uses the context two steps behind the stream
		// (the resolution window) and checks the routing decision.
		if i >= 2 {
			if _, err := app.Use(stream[i-2].ID); err != nil {
				// Discarded as inconsistent: the application skips it.
				continue
			}
			active, err := app.Situations()
			if err != nil {
				return err
			}
			if r := route(active); r != routing {
				routing = r
				fmt.Printf("t=%3ds  calls now routed to %s\n",
					i*int(callforward.SampleStep.Seconds()), routing)
			}
		}
	}

	mwStats, _, err := app.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("\n%d contexts submitted, %d inconsistencies detected, "+
		"%d delivered, %d discarded\n",
		mwStats.Submitted, mwStats.Detected, mwStats.Delivered, mwStats.Discarded)
	return nil
}
