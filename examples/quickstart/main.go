// Quickstart: build a middleware with one consistency constraint and the
// drop-bad resolution strategy, replay the paper's Figure 1 scenario (five
// tracked locations, d3 corrupted), and watch drop-bad discard exactly the
// corrupted context.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"ctxres/internal/constraint"
	"ctxres/internal/ctx"
	"ctxres/internal/middleware"
	"ctxres/internal/strategy"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A consistency constraint: Peter's walking velocity, estimated
	// from stream pairs up to two steps apart, must stay under 1.5 m/s
	// (150% of his nominal speed, per the paper's running example).
	checker := constraint.NewChecker()
	checker.MustRegister(&constraint.Constraint{
		Name: "velocity-limit",
		Doc:  "estimated walking velocity stays below 150% of nominal",
		Formula: constraint.Forall("a", ctx.KindLocation,
			constraint.Forall("b", ctx.KindLocation,
				constraint.Implies(
					constraint.And(
						constraint.SameSubject("a", "b"),
						constraint.StreamWithin("a", "b", 2),
					),
					constraint.VelocityBelow("a", "b", 1.5),
				))),
	})

	// 2. A middleware with the drop-bad strategy and a hook to watch
	// resolution decisions.
	dropBad := strategy.NewDropBad()
	mw := middleware.New(checker, dropBad, middleware.WithHooks(middleware.Hooks{
		OnDetect: func(v constraint.Violation) {
			fmt.Printf("  detected inconsistency %s\n", v)
		},
		OnDiscard: func(c *ctx.Context, reason middleware.DiscardReason) {
			fmt.Printf("  discarded %s (%s)\n", c.ID, reason)
		},
	}))

	// 3. The Figure 1 trace: Peter walks at 1 m/s, but the tracked
	// location d3 jumps 8 m off the path (a sensing error).
	start := time.Date(2008, 6, 17, 9, 0, 0, 0, time.UTC)
	xs := []float64{0, 1, 9, 3, 4} // d3 = 9 deviates
	ids := make([]ctx.ID, len(xs))
	for i, x := range xs {
		c := ctx.NewLocation("peter", start.Add(time.Duration(i)*time.Second),
			ctx.Point{X: x},
			ctx.WithSeq(uint64(i+1)), ctx.WithSource("badge-tracker"))
		ids[i] = c.ID
		fmt.Printf("submit %s at x=%.0f\n", c.ID, x)
		if _, err := mw.Submit(c); err != nil {
			return err
		}
	}

	// 4. Drop-bad defers resolution until contexts are used. Count values
	// after the whole trace: d3 participates in four inconsistencies.
	fmt.Println("\ncount values before use:")
	for id, n := range dropBad.Tracker().Counts() {
		fmt.Printf("  %s: %d\n", id, n)
	}

	// 5. The application uses the contexts; drop-bad discards exactly the
	// context with the largest count value.
	fmt.Println("\napplication uses the contexts:")
	usable := 0
	for _, id := range ids {
		if c, err := mw.Use(id); err != nil {
			fmt.Printf("  use %s → rejected (%v)\n", id, err)
		} else {
			usable++
			p, _ := ctx.LocationPoint(c)
			fmt.Printf("  use %s → ok (x=%.0f)\n", id, p.X)
		}
	}
	fmt.Printf("\n%d of %d contexts delivered; stats: %+v\n",
		usable, len(ids), mw.Stats())
	return nil
}
