// RFID shelf monitoring: the RFID data anomalies application. A shelf
// deployment produces noisy inventory reads (missed reads, ghost reads,
// cross reads); the middleware cleans them with the drop-bad strategy; the
// application tracks whether the watched item is on its home shelf,
// misplaced, or missing. The run compares the alarms raised with and
// without inconsistency resolution.
//
//	go run ./examples/rfidshelf
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ctxres/internal/apps/rfidmon"
	"ctxres/internal/constraint"
	"ctxres/internal/ctx"
	"ctxres/internal/middleware"
	"ctxres/internal/rfid"
	"ctxres/internal/strategy"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// replay pushes the same read stream through a middleware with the given
// strategy and records, per cycle, which zone the application believes the
// watched item is in: the zone of the freshest delivered read of the item
// ("" while unknown).
func replay(stream [][]*ctx.Context, strat strategyMaker) (beliefs []string, stats middleware.Stats, err error) {
	engine := rfidmon.Engine()
	mw := middleware.New(rfidmon.Checker(), strat(), middleware.WithSituations(engine))

	var window [][]*ctx.Context
	useStep := func(step []*ctx.Context) {
		for _, c := range step {
			_, _ = mw.Use(c.ID)
		}
	}
	belief := ""
	for _, step := range stream {
		cloned := make([]*ctx.Context, len(step))
		for j, c := range step {
			cloned[j] = c.Clone()
		}
		for _, c := range cloned {
			if _, err := mw.Submit(c); err != nil {
				return nil, middleware.Stats{}, err
			}
		}
		window = append(window, cloned)
		if len(window) > 2 {
			useStep(window[0])
			window = window[1:]
		}
		if z, ok := newestWatchedZone(mw.Pool().Delivered()); ok {
			belief = z
		}
		beliefs = append(beliefs, belief)
	}
	for _, step := range window {
		useStep(step)
	}
	return beliefs, mw.Stats(), nil
}

// newestWatchedZone finds the zone of the newest read of the watched tag.
func newestWatchedZone(reads []*ctx.Context) (string, bool) {
	var newest *ctx.Context
	for _, c := range reads {
		if c.Subject != rfidmon.WatchedTag {
			continue
		}
		if newest == nil || c.Timestamp.After(newest.Timestamp) {
			newest = c
		}
	}
	if newest == nil {
		return "", false
	}
	return rfid.ReadZone(newest)
}

type strategyMaker func() strategy.Strategy

func run() error {
	cfg := rfidmon.DefaultWorkload(0.3) // 30% error rate
	cfg.Cycles = 150
	stream, err := rfidmon.Generate(cfg, rand.New(rand.NewSource(11)))
	if err != nil {
		return err
	}
	total, corrupted := 0, 0
	for _, step := range stream {
		for _, c := range step {
			total++
			if c.Truth.Corrupted {
				corrupted++
			}
		}
	}
	fmt.Printf("generated %d reads over %d cycles (%d anomalous: ghost/cross reads)\n\n",
		total, cfg.Cycles, corrupted)

	// Ground truth: per cycle, the item's real zone, judged from the
	// expected (uncorrupted) reads only.
	truth := truthZones(stream)

	noneBeliefs, noneStats, err := replay(stream, func() strategy.Strategy {
		return noResolution{}
	})
	if err != nil {
		return err
	}
	dbadBeliefs, dbadStats, err := replay(stream, func() strategy.Strategy {
		return strategy.NewDropBad()
	})
	if err != nil {
		return err
	}

	fmt.Printf("per-cycle accuracy of the app's believed item zone:\n")
	fmt.Printf("  without resolution: %5.1f%%  (%d contexts discarded)\n",
		accuracy(noneBeliefs, truth)*100, noneStats.Discarded)
	fmt.Printf("  with drop-bad:      %5.1f%%  (%d contexts discarded)\n",
		accuracy(dbadBeliefs, truth)*100, dbadStats.Discarded)
	fmt.Println("\nanomalous reads mislead the shelf monitor; drop-bad removes most")
	fmt.Println("of them before the application reacts.")
	return nil
}

// truthZones records, per cycle, the zone of the newest expected read of
// the watched item (carrying the last known zone forward).
func truthZones(stream [][]*ctx.Context) []string {
	var out []string
	zone := ""
	for _, step := range stream {
		for _, c := range step {
			if c.Truth.Corrupted || c.Subject != rfidmon.WatchedTag {
				continue
			}
			if z, ok := rfid.ReadZone(c); ok {
				zone = z
			}
		}
		out = append(out, zone)
	}
	return out
}

// accuracy is the fraction of cycles where the belief matches the truth
// the application could have known: delivery lags the stream by the
// two-cycle resolution window, so beliefs are compared against the truth
// two cycles earlier.
func accuracy(beliefs, truth []string) float64 {
	const lag = 2
	n, match := 0, 0
	for i := lag; i < len(truth) && i < len(beliefs); i++ {
		if truth[i-lag] == "" {
			continue
		}
		n++
		if beliefs[i] == truth[i-lag] {
			match++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(match) / float64(n)
}

// noResolution is a strategy that never discards anything: the baseline of
// running the application on the raw, uncleaned stream.
type noResolution struct{}

func (noResolution) Name() string { return "NONE" }
func (noResolution) OnAddition(*ctx.Context, []constraint.Violation) strategy.Outcome {
	return strategy.Outcome{}
}
func (noResolution) OnUse(*ctx.Context) (bool, strategy.Outcome) { return true, strategy.Outcome{} }
func (noResolution) OnExpire(*ctx.Context)                       {}
func (noResolution) Reset()                                      {}

var _ strategy.Strategy = noResolution{}
