module ctxres

go 1.22
