// Package ctxres holds the repository-level benchmark harness: one
// testing.B benchmark per reproduced table/figure (run with
// `go test -bench=. -benchmem`), ablation benches for the design choices
// DESIGN.md calls out, and micro-benchmarks for the hot paths (incremental
// vs full checking, tracker maintenance, strategy decisions, LANDMARC
// estimation, wire codec).
//
// Figure/table benches run a reduced group count per iteration so a bench
// iteration stays around a second; the ctxbench command runs the full
// 20-group configuration.
package ctxres

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ctxres/internal/apps/callforward"
	"ctxres/internal/apps/rfidmon"
	"ctxres/internal/constraint"
	"ctxres/internal/ctx"
	"ctxres/internal/experiment"
	"ctxres/internal/inconsistency"
	"ctxres/internal/landmarc"
	"ctxres/internal/middleware"
	"ctxres/internal/simspace"
	"ctxres/internal/strategy"
	"ctxres/internal/telemetry"
)

// benchFigureConfig keeps one bench iteration small but representative.
func benchFigureConfig() experiment.FigureConfig {
	return experiment.FigureConfig{
		ErrRates:   []float64{0.2},
		Groups:     2,
		Seed:       1,
		Strategies: experiment.ComparedStrategies(),
	}
}

// BenchmarkFigure9CallForwarding regenerates Figure 9's data points
// (context use rate and situation activation rate for the Call Forwarding
// application).
func BenchmarkFigure9CallForwarding(b *testing.B) {
	spec := experiment.CallForwardingApp()
	cfg := benchFigureConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig, err := experiment.RunFigure(spec, cfg)
		if err != nil {
			b.Fatal(err)
		}
		point, ok := fig.Point(0.2, experiment.DBad)
		if !ok {
			b.Fatal("missing data point")
		}
		b.ReportMetric(point.CtxUseRate.Mean*100, "ctxUse%")
		b.ReportMetric(point.SitActRate.Mean*100, "sitAct%")
	}
}

// BenchmarkFigure10RFID regenerates Figure 10's data points (RFID data
// anomalies application).
func BenchmarkFigure10RFID(b *testing.B) {
	spec := experiment.RFIDApp()
	cfg := benchFigureConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig, err := experiment.RunFigure(spec, cfg)
		if err != nil {
			b.Fatal(err)
		}
		point, ok := fig.Point(0.2, experiment.DBad)
		if !ok {
			b.Fatal("missing data point")
		}
		b.ReportMetric(point.CtxUseRate.Mean*100, "ctxUse%")
		b.ReportMetric(point.SitActRate.Mean*100, "sitAct%")
	}
}

// BenchmarkCaseStudyLandmarc regenerates the Section 5.2 case study
// (survival rate, removal precision, rule-holding rates).
func BenchmarkCaseStudyLandmarc(b *testing.B) {
	cfg := experiment.DefaultCaseStudyConfig()
	cfg.Groups = 1
	cfg.Steps = 150
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunCaseStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SurvivalRate.Mean*100, "survival%")
		b.ReportMetric(res.RemovalPrecision.Mean*100, "precision%")
		b.ReportMetric(res.Rule2PrimeRate.Mean*100, "rule2'%")
	}
}

// BenchmarkAblationWindow measures the resolution-window ablation
// (Section 5.3: a zero window reduces drop-bad's effectiveness).
func BenchmarkAblationWindow(b *testing.B) {
	spec := experiment.CallForwardingApp()
	for _, delay := range []int{0, 2, 5} {
		b.Run(benchName("window", delay), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := spec.NewWorkload(0.2, rand.New(rand.NewSource(7)))
				if err != nil {
					b.Fatal(err)
				}
				w.UseDelay = delay
				res, err := experiment.RunOnce(spec, w, experiment.DBad,
					rand.New(rand.NewSource(8)), false)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Rates.UsedCorrupted), "corrLeak")
				b.ReportMetric(res.Rates.RemovalRecall*100, "recall%")
			}
		})
	}
}

// BenchmarkAblationBadMarking compares drop-bad with and without the
// Case-2 bad-marking.
func BenchmarkAblationBadMarking(b *testing.B) {
	spec := experiment.CallForwardingApp()
	for _, v := range []struct {
		name  string
		strat experiment.StrategyName
	}{
		{"with-bad-marking", experiment.DBad},
		{"without-bad-marking", experiment.DBadNoB},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := spec.NewWorkload(0.2, rand.New(rand.NewSource(7)))
				if err != nil {
					b.Fatal(err)
				}
				res, err := experiment.RunOnce(spec, w, v.strat,
					rand.New(rand.NewSource(8)), false)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Rates.RemovalRecall*100, "recall%")
			}
		})
	}
}

// BenchmarkAblationConstraintReach compares the Section 3.1 refined
// constraint set (adjacent + skip-1 velocity pairs) against adjacent-only.
func BenchmarkAblationConstraintReach(b *testing.B) {
	abl := experiment.AblationConfig{Groups: 2, Seed: 3, ErrRate: 0.2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunAblations(abl)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("no ablation points")
		}
	}
}

// --- micro benchmarks -----------------------------------------------------

var benchStart = time.Date(2008, 6, 17, 9, 0, 0, 0, time.UTC)

func benchTrace(n int, corruptEvery int) []*ctx.Context {
	out := make([]*ctx.Context, n)
	x := 0.0
	for i := 0; i < n; i++ {
		x += 1
		if corruptEvery > 0 && i%corruptEvery == corruptEvery-1 {
			x += 10
		}
		out[i] = ctx.NewLocation("peter", benchStart.Add(time.Duration(i)*time.Second),
			ctx.Point{X: x}, ctx.WithSeq(uint64(i+1)), ctx.WithSource("t"))
	}
	return out
}

func benchChecker() *constraint.Checker {
	ch := constraint.NewChecker()
	ch.MustRegister(&constraint.Constraint{
		Name: "vel",
		Formula: constraint.Forall("a", ctx.KindLocation,
			constraint.Forall("b", ctx.KindLocation,
				constraint.Implies(
					constraint.And(
						constraint.SameSubject("a", "b"),
						constraint.StreamWithin("a", "b", 2),
					),
					constraint.VelocityBelow("a", "b", 1.5),
				))),
	})
	return ch
}

// BenchmarkCheckerFull measures a full constraint check over a buffer of
// 64 contexts.
func BenchmarkCheckerFull(b *testing.B) {
	ch := benchChecker()
	u := constraint.NewSliceUniverse(benchTrace(64, 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Check(u)
	}
}

// BenchmarkParallelVsSerialCheck is the parallel-evaluator ablation: one
// full consistency check over a Figure-9-sized location stream, serial vs
// sharded across 2/4/8 workers. On multi-core hardware the parallel rows
// show the wall-clock speedup the sharding buys (the output is proven
// byte-identical by the differential harness, so only time differs); on a
// single core they expose the sharding overhead instead.
func BenchmarkParallelVsSerialCheck(b *testing.B) {
	ch := benchChecker()
	u := constraint.NewSliceUniverse(benchTrace(512, 8))
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ch.Check(u)
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("parallel-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ch.CheckParallel(u, workers)
			}
		})
	}
}

// TestParallelCheckerNoRegression pins the figures' correctness to the
// choice of evaluator: the Figure-9 configuration run under the serial and
// the parallel checker must produce identical resolution outcomes (rates,
// not timings) for every compared strategy.
func TestParallelCheckerNoRegression(t *testing.T) {
	spec := experiment.CallForwardingApp()
	w, err := spec.NewWorkload(0.2, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range experiment.ComparedStrategies() {
		serial, err := experiment.RunOnceOpts(spec, w, name,
			rand.New(rand.NewSource(8)), experiment.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 4} {
			got, err := experiment.RunOnceOpts(spec, w, name,
				rand.New(rand.NewSource(8)), experiment.RunOptions{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if got.Rates != serial.Rates {
				t.Fatalf("strategy %s parallelism %d: rates %+v, serial %+v",
					name, par, got.Rates, serial.Rates)
			}
		}
	}
}

// BenchmarkCheckerIncremental measures the incremental check for one
// addition against the same buffer — the ICSE'06 optimization the
// middleware uses on every submission.
func BenchmarkCheckerIncremental(b *testing.B) {
	ch := benchChecker()
	trace := benchTrace(64, 8)
	u := constraint.NewSliceUniverse(trace)
	added := trace[len(trace)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.CheckAddition(u, added)
	}
}

// BenchmarkTrackerAddResolve measures Σ maintenance under churn.
func BenchmarkTrackerAddResolve(b *testing.B) {
	cs := benchTrace(64, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := inconsistency.NewTracker()
		for j := 1; j < len(cs); j++ {
			tr.Add(inconsistency.Inconsistency{
				Constraint: "vel",
				Link:       constraint.NewLink(cs[j-1], cs[j]),
			})
		}
		for _, c := range cs {
			tr.ResolveInvolving(c.ID)
		}
	}
}

// BenchmarkStrategies measures one full middleware run per strategy on a
// shared Call Forwarding workload.
func BenchmarkStrategies(b *testing.B) {
	spec := experiment.CallForwardingApp()
	w, err := spec.NewWorkload(0.2, rand.New(rand.NewSource(5)))
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range experiment.ComparedStrategies() {
		b.Run(string(name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiment.RunOnce(spec, w, name,
					rand.New(rand.NewSource(6)), false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLandmarcEstimate measures one LANDMARC estimation cycle on the
// case-study field.
func BenchmarkLandmarcEstimate(b *testing.B) {
	floor := simspace.OfficeFloor()
	field, err := landmarc.GridField(floor.Width, floor.Height, 2,
		landmarc.DefaultRadio(), 4)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		field.Estimate(ctx.Point{X: 12, Y: 7}, rng)
	}
}

// BenchmarkWorkloadGeneration measures the two applications' workload
// generators.
func BenchmarkWorkloadGeneration(b *testing.B) {
	b.Run("call-forwarding", func(b *testing.B) {
		cfg := callforward.DefaultWorkload(0.2)
		for i := 0; i < b.N; i++ {
			if _, err := callforward.Generate(cfg, rand.New(rand.NewSource(int64(i)))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rfid", func(b *testing.B) {
		cfg := rfidmon.DefaultWorkload(0.2)
		for i := 0; i < b.N; i++ {
			if _, err := rfidmon.Generate(cfg, rand.New(rand.NewSource(int64(i)))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDropBadOnUse measures one Part-2 resolution decision with a
// populated Σ.
func BenchmarkDropBadOnUse(b *testing.B) {
	cs := benchTrace(16, 0)
	vios := make([]constraint.Violation, 0, len(cs)-1)
	for j := 1; j < len(cs); j++ {
		vios = append(vios, constraint.Violation{
			Constraint: "vel",
			Link:       constraint.NewLink(cs[j-1], cs[j]),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := strategy.NewDropBad()
		s.OnAddition(nil, vios)
		b.StartTimer()
		s.OnUse(cs[len(cs)/2])
	}
}

// BenchmarkContextJSON measures the wire codec round trip.
func BenchmarkContextJSON(b *testing.B) {
	c := ctx.NewLocation("peter", benchStart, ctx.Point{X: 3.5, Y: 7.25},
		ctx.WithSource("tracker"), ctx.WithSeq(42), ctx.WithTTL(10*time.Second))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := json.Marshal(c)
		if err != nil {
			b.Fatal(err)
		}
		var back ctx.Context
		if err := json.Unmarshal(data, &back); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, n int) string {
	return prefix + "=" + string(rune('0'+n))
}

// nullSink discards spans; it isolates the span-assembly cost in
// BenchmarkSubmit from any sink I/O.
type nullSink struct{}

func (nullSink) RecordSpan(*telemetry.Span) {}

// BenchmarkSubmit measures the middleware's submission path in the three
// telemetry modes: unconfigured (must stay within noise of the seed
// pipeline — disabled telemetry takes no clock readings and allocates
// nothing), with a registry (atomic counter/histogram updates), and with
// a registry plus a span sink (per-operation span assembly on top).
func BenchmarkSubmit(b *testing.B) {
	run := func(b *testing.B, opts ...middleware.Option) {
		trace := benchTrace(128, 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			m := middleware.New(benchChecker(), strategy.NewDropBad(), opts...)
			cloned := make([]*ctx.Context, len(trace))
			for j, c := range trace {
				cloned[j] = c.Clone()
			}
			b.StartTimer()
			for _, c := range cloned {
				if _, err := m.Submit(c); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("no-telemetry", func(b *testing.B) {
		run(b)
	})
	b.Run("registry", func(b *testing.B) {
		run(b, middleware.WithTelemetry(telemetry.NewRegistry()))
	})
	b.Run("registry+spans", func(b *testing.B) {
		run(b, middleware.WithTelemetry(telemetry.NewRegistry()),
			middleware.WithSpanSink(nullSink{}))
	})
}
