package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ctxres/internal/ctx"
	"ctxres/internal/situation"
	"ctxres/internal/trace"
	"ctxres/internal/wal"
)

var t0 = time.Date(2008, 6, 17, 9, 0, 0, 0, time.UTC)

func writeJournal(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	j, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string, seq uint64) *ctx.Context {
		return ctx.NewLocation("peter", t0.Add(time.Duration(seq)*time.Second),
			ctx.Point{X: float64(seq)},
			ctx.WithID(ctx.ID(id)), ctx.WithSeq(seq), ctx.WithSource("s"))
	}
	app := func(r wal.Record) {
		t.Helper()
		if _, err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	app(wal.Record{Type: wal.RecordSubmit, Context: mk("a", 1)})
	app(wal.Record{Type: wal.RecordSubmit, Context: mk("b", 2)})
	at := t0.Add(time.Minute)
	app(wal.Record{Type: wal.RecordAdvance, Time: &at})
	app(wal.Record{Type: wal.RecordSubmit, Context: mk("c", 3)})
	app(wal.Record{Type: wal.RecordUse, ID: "c"})
	app(wal.Record{Type: wal.RecordDiscard, ID: "b", Reason: "on-use"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestInspectSummarizes(t *testing.T) {
	dir := writeJournal(t)
	var out bytes.Buffer
	if err := run([]string{"inspect", dir}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"1 segments", "6 records", "records submit: 3", "records use: 1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, text)
		}
	}
}

// TestInspectShowsSnapshotSituations proves the situation-engine state a
// snapshot carries is decoded and displayed, not dropped as an opaque
// blob.
func TestInspectShowsSnapshotSituations(t *testing.T) {
	dir := t.TempDir()
	j, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	c := ctx.NewLocation("peter", t0, ctx.Point{X: 1},
		ctx.WithID("a"), ctx.WithSeq(1), ctx.WithSource("s"))
	if _, err := j.Append(wal.Record{Type: wal.RecordSubmit, Context: c}); err != nil {
		t.Fatal(err)
	}
	st := situation.State{
		Active:        map[string]bool{"cf-reachable": true, "cf-in-meeting": false},
		Activations:   3,
		Deactivations: 2,
	}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.WriteSnapshot(wal.Snapshot{
		Seq: 1, Clock: t0, Situations: raw,
	}); err != nil {
		t.Fatal(err)
	}
	// A post-snapshot record: the raw dump shows snapshot then tail.
	c2 := ctx.NewLocation("peter", t0.Add(time.Second), ctx.Point{X: 2},
		ctx.WithID("b"), ctx.WithSeq(2), ctx.WithSource("s"))
	if _, err := j.Append(wal.Record{Type: wal.RecordSubmit, Context: c2}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"inspect", dir}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"situations 1 active", "[cf-reachable]", "(3 up / 2 down)"} {
		if !strings.Contains(text, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, text)
		}
	}

	// The raw dump leads with the snapshot, situation state included.
	out.Reset()
	if err := run([]string{"dump", "-raw", dir}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("raw dump lines = %d, want snapshot + 1 record:\n%s", len(lines), out.String())
	}
	var head struct {
		Type       string          `json:"type"`
		Seq        uint64          `json:"seq"`
		Situations json.RawMessage `json:"situations"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &head); err != nil {
		t.Fatalf("raw dump head is not JSON: %v\n%s", err, lines[0])
	}
	if head.Type != "snapshot" || head.Seq != 1 {
		t.Fatalf("raw dump head = %+v, want snapshot at seq 1", head)
	}
	var got situation.State
	if err := json.Unmarshal(head.Situations, &got); err != nil {
		t.Fatalf("raw dump snapshot situations undecodable: %v", err)
	}
	if !got.Active["cf-reachable"] || got.Activations != 3 || got.Deactivations != 2 {
		t.Fatalf("raw dump situations = %+v", got)
	}
}

func TestVerifyCleanAndCorrupt(t *testing.T) {
	dir := writeJournal(t)
	var out bytes.Buffer
	if err := run([]string{"verify", dir}, &out); err != nil {
		t.Fatalf("clean dir failed verify: %v", err)
	}
	if !strings.Contains(out.String(), "clean") {
		t.Fatalf("verify output missing clean marker:\n%s", out.String())
	}

	// Corrupt a payload byte in the middle: verify must fail loudly.
	var seg string
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			seg = filepath.Join(dir, e.Name())
		}
	}
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	buf[20] ^= 0xff
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"verify", dir}, &out); err == nil {
		t.Fatal("verify passed a corrupt journal")
	}
}

func TestDumpProducesValidTrace(t *testing.T) {
	dir := writeJournal(t)
	var out bytes.Buffer
	if err := run([]string{"dump", dir}, &out); err != nil {
		t.Fatal(err)
	}
	steps, err := trace.Read(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("dump output is not a valid trace: %v\n%s", err, out.String())
	}
	// Two submits before the advance, one after.
	if len(steps) != 2 || len(steps[0]) != 2 || len(steps[1]) != 1 {
		t.Fatalf("steps = %v", steps)
	}
	if steps[0][0].ID != "a" || steps[1][0].ID != "c" {
		t.Fatalf("dumped contexts out of order: %v", steps)
	}
}

func TestDumpRaw(t *testing.T) {
	dir := writeJournal(t)
	var out bytes.Buffer
	if err := run([]string{"dump", "-raw", dir}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("raw dump lines = %d, want 6", len(lines))
	}
	if !strings.Contains(lines[5], `"discard"`) {
		t.Fatalf("raw dump missing annotation records: %s", lines[5])
	}
}

func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"frobnicate", "x"}, &out); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run([]string{"inspect"}, &out); err == nil {
		t.Fatal("missing dir accepted")
	}
}
