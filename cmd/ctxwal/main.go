// Command ctxwal inspects the middleware's write-ahead log directories
// (see internal/wal and ctxmwd -data-dir).
//
//	ctxwal inspect <dir>   summarize segments, snapshots, and records
//	ctxwal verify <dir>    check integrity; nonzero exit on any corruption
//	ctxwal dump <dir>      re-emit the journaled workload
//
// dump writes the submitted contexts as an internal/trace JSON-lines
// stream (step markers at every clock advance), so a journaled workload
// can be replayed through ctxreplay or the experiment harness. With -raw
// it writes one JSON object per journal record instead, annotations
// included.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"ctxres/internal/situation"
	"ctxres/internal/telemetry"
	"ctxres/internal/trace"
	"ctxres/internal/wal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ctxwal:", err)
		os.Exit(1)
	}
}

const usage = "usage: ctxwal <inspect|verify|dump|version> [-raw] <dir>"

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return errors.New(usage)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "version", "-version", "--version":
		fmt.Fprintln(out, telemetry.VersionString("ctxwal"))
		return nil
	case "inspect":
		dir, _, err := parseDir(cmd, rest)
		if err != nil {
			return err
		}
		return inspect(dir, out)
	case "verify":
		dir, _, err := parseDir(cmd, rest)
		if err != nil {
			return err
		}
		return verify(dir, out)
	case "dump":
		dir, raw, err := parseDir(cmd, rest)
		if err != nil {
			return err
		}
		return dump(dir, raw, out)
	default:
		return fmt.Errorf("unknown command %q\n%s", cmd, usage)
	}
}

func parseDir(cmd string, args []string) (dir string, raw bool, err error) {
	fs := flag.NewFlagSet("ctxwal "+cmd, flag.ContinueOnError)
	rawFlag := fs.Bool("raw", false, "dump raw journal records instead of a trace stream")
	if err := fs.Parse(args); err != nil {
		return "", false, err
	}
	if fs.NArg() != 1 {
		return "", false, errors.New(usage)
	}
	return fs.Arg(0), *rawFlag, nil
}

func inspect(dir string, out io.Writer) error {
	rep, err := wal.Verify(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: %d segments, %d snapshots, %d records\n",
		dir, len(rep.Segments), len(rep.Snapshots), rep.Records)
	for _, seg := range rep.Segments {
		line := fmt.Sprintf("  segment %s: %d bytes, %d records", seg.Name, seg.Bytes, seg.Records)
		if seg.Records > 0 {
			line += fmt.Sprintf(" (seq %d..%d, epoch %d..%d)", seg.FirstSeq, seg.LastSeq, seg.FirstEpoch, seg.LastEpoch)
		}
		if seg.Torn {
			line += fmt.Sprintf(", torn tail %d bytes", seg.TornLen)
		}
		if seg.Corrupt != "" {
			line += ", CORRUPT: " + seg.Corrupt
		}
		fmt.Fprintln(out, line)
	}
	for _, sn := range rep.Snapshots {
		line := fmt.Sprintf("  snapshot %s: %d bytes", sn.Name, sn.Bytes)
		if sn.Corrupt != "" {
			line += ", CORRUPT: " + sn.Corrupt
		} else {
			line += fmt.Sprintf(", seq %d, epoch %d, %d pool entries, clock %s", sn.Seq, sn.Epoch, sn.Entries, sn.Clock)
			line += situationSummary(sn.Situations)
		}
		fmt.Fprintln(out, line)
	}
	types := make([]string, 0, len(rep.RecordsByType))
	for t := range rep.RecordsByType {
		types = append(types, string(t))
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Fprintf(out, "  records %s: %d\n", t, rep.RecordsByType[wal.RecordType(t)])
	}
	for _, e := range rep.SequenceErrors {
		fmt.Fprintln(out, "  sequence error:", e)
	}
	return nil
}

// situationSummary renders the snapshot's situation-engine state (a
// marshaled situation.State, opaque to the wal layer): the active
// situation names and the cumulative transition counters.
func situationSummary(raw json.RawMessage) string {
	if len(raw) == 0 {
		return ""
	}
	var st situation.State
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Sprintf(", situations UNDECODABLE: %v", err)
	}
	var active []string
	for name, on := range st.Active {
		if on {
			active = append(active, name)
		}
	}
	sort.Strings(active)
	s := fmt.Sprintf(", situations %d active", len(active))
	if len(active) > 0 {
		s += " [" + strings.Join(active, " ") + "]"
	}
	return s + fmt.Sprintf(" (%d up / %d down)", st.Activations, st.Deactivations)
}

func verify(dir string, out io.Writer) error {
	rep, err := wal.Verify(dir)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintln(out, string(data))
	if !rep.Clean() {
		return fmt.Errorf("%s: %d corrupt files, %d torn tails, %d sequence errors",
			dir, rep.CorruptFiles, rep.TornTails, len(rep.SequenceErrors))
	}
	fmt.Fprintln(out, "clean")
	return nil
}

func dump(dir string, raw bool, out io.Writer) error {
	recs, err := wal.Records(dir)
	if err != nil {
		return err
	}
	if raw {
		enc := json.NewEncoder(out)
		// The latest snapshot leads the stream: replay state (notably the
		// situation engine's) lives there, not in any record.
		if snap, _, err := wal.LatestSnapshot(dir); err != nil {
			return err
		} else if snap != nil {
			head := struct {
				Type       string          `json:"type"`
				Seq        uint64          `json:"seq"`
				Clock      string          `json:"clock"`
				Situations json.RawMessage `json:"situations,omitempty"`
			}{"snapshot", snap.Seq, snap.Clock.Format(time.RFC3339Nano), snap.Situations}
			if err := enc.Encode(head); err != nil {
				return err
			}
		}
		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
		return nil
	}
	// Trace form: contexts come from submit records; every clock advance
	// starts a new step, mirroring how the experiment harness stamps its
	// stepped workloads.
	w := trace.NewWriter(out)
	if err := w.BeginStep(); err != nil {
		return err
	}
	for _, rec := range recs {
		switch rec.Type {
		case wal.RecordSubmit:
			if err := w.Write(rec.Context); err != nil {
				return err
			}
		case wal.RecordAdvance:
			if err := w.BeginStep(); err != nil {
				return err
			}
		}
	}
	return w.Flush()
}
