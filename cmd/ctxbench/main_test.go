package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRequiresSelection(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("no selection accepted")
	}
}

func TestRunFigure9Small(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var out strings.Builder
	err := run([]string{"-fig", "9", "-groups", "2", "-seed", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"Figure 9", "call-forwarding", "ctxUseRate", "D-BAD", "D-ALL"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunCSVOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{"-fig", "9", "-groups", "1", "-csv", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "call-forwarding.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "app,errRate,strategy") {
		t.Fatalf("csv malformed:\n%s", data)
	}
}

// TestMeasurePush exercises the perf suite's push-latency point directly:
// every toggle must round-trip submit → activation → push, and both the
// client-side percentiles and the server-side push histogram must be
// populated.
func TestMeasurePush(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	pp, err := measurePush()
	if err != nil {
		t.Fatal(err)
	}
	if pp.Toggles == 0 || pp.EndToEndP50Ms <= 0 || pp.EndToEndP99Ms < pp.EndToEndP50Ms {
		t.Fatalf("implausible push point: %+v", pp)
	}
	if pp.ServerPush.Count == 0 {
		t.Fatalf("server push histogram empty: %+v", pp)
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}
