package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ctxres/internal/constraint"
	"ctxres/internal/ctx"
	"ctxres/internal/daemon"
	"ctxres/internal/middleware"
	"ctxres/internal/strategy"
	"ctxres/internal/wal"
)

// The load generator measures the daemon's raw submission path — wire
// framing, batching, and WAL group commit — at equal durability
// (fsync=always for every configuration), so the speedups it reports are
// transport and commit-protocol wins, never durability trades.
//
// Methodology: for each configuration it first probes capacity with a
// fixed-work closed loop — every worker fires as fast as the daemon
// answers until a shared context budget (the same for every
// configuration) is exhausted. Equal work means every configuration ends
// the probe with the same pool size; a fixed-*time* probe would let the
// faster configurations grow the pool further and pay more per
// insertion, biasing the capacity ratio against exactly the
// configurations under test. It then runs open-loop points at fractions
// of the measured capacity. In the open-loop
// phase each request has an intended send time fixed by a global schedule
// (start + i/rate, claimed via an atomic counter); latency is measured
// from the intended time, not the actual send, so a stalled server
// inflates the recorded latencies instead of silently slowing the
// generator down — the standard defense against coordinated omission.

// loadgenConfig names one measured configuration.
type loadgenConfig struct {
	Name        string `json:"config"`
	WireFormat  string `json:"wireFormat"`
	BatchSize   int    `json:"batchSize"`
	GroupCommit bool   `json:"groupCommit"`
}

// loadgenResult is the measurement for one configuration.
type loadgenResult struct {
	loadgenConfig
	Fsync             string         `json:"fsync"`
	Workers           int            `json:"workers"`
	CapacityOpsPerSec float64        `json:"capacityOpsPerSec"`
	Points            []loadgenPoint `json:"points"`
}

// loadgenPoint is one open-loop rate point.
type loadgenPoint struct {
	TargetOpsPerSec   float64 `json:"targetOpsPerSec"`
	AchievedOpsPerSec float64 `json:"achievedOpsPerSec"`
	Contexts          int64   `json:"contexts"`
	DurationSeconds   float64 `json:"durationSeconds"`
	LatencyP50Millis  float64 `json:"latencyP50Millis"`
	LatencyP95Millis  float64 `json:"latencyP95Millis"`
	LatencyP99Millis  float64 `json:"latencyP99Millis"`
	LatencyMaxMillis  float64 `json:"latencyMaxMillis"`
}

// loadgenReport is the `loadgen` section of the perf report.
type loadgenReport struct {
	Method            string          `json:"method"`
	Results           []loadgenResult `json:"results"`
	GroupBatchSpeedup float64         `json:"groupBatchSpeedup"`
	Baseline          string          `json:"baseline"`
	Candidate         string          `json:"candidate"`
}

const (
	loadgenWorkers   = 6
	loadgenBaseline  = "single-json"
	loadgenCandidate = "batch16-binary-group"

	// The capacity probe's work budget scales with -loadgen-dur at this
	// nominal rate, floored so very short smoke runs still measure
	// something.
	loadgenProbeRate = 4000 // contexts per second of phase budget
	loadgenProbeMin  = 512  // contexts
)

func loadgenConfigs(wireFormat string) []loadgenConfig {
	all := []loadgenConfig{
		{Name: "single-json", WireFormat: daemon.FormatJSON, BatchSize: 1, GroupCommit: false},
		{Name: "single-json-group", WireFormat: daemon.FormatJSON, BatchSize: 1, GroupCommit: true},
		{Name: "single-binary-group", WireFormat: daemon.FormatBinary, BatchSize: 1, GroupCommit: true},
		{Name: "batch16-json-group", WireFormat: daemon.FormatJSON, BatchSize: 16, GroupCommit: true},
		{Name: "batch16-binary-group", WireFormat: daemon.FormatBinary, BatchSize: 16, GroupCommit: true},
	}
	if wireFormat == "" || wireFormat == "both" {
		return all
	}
	var out []loadgenConfig
	for _, c := range all {
		if c.WireFormat == wireFormat {
			out = append(out, c)
		}
	}
	return out
}

// runLoadgen measures every selected configuration. phaseDur bounds each
// phase (one closed-loop probe plus the open-loop points per config).
func runLoadgen(out io.Writer, phaseDur time.Duration, wireFormat string) (*loadgenReport, error) {
	rep := &loadgenReport{
		Method: "fixed-work closed-loop capacity probe (equal context budget per configuration), " +
			"then open-loop points at 50%/80% of capacity; " +
			"latency from intended arrival time (coordinated-omission-safe); fsync=always everywhere",
		Baseline:  loadgenBaseline,
		Candidate: loadgenCandidate,
	}
	for _, cfg := range loadgenConfigs(wireFormat) {
		res, err := measureLoadgenConfig(cfg, phaseDur)
		if err != nil {
			return nil, fmt.Errorf("loadgen %s: %w", cfg.Name, err)
		}
		rep.Results = append(rep.Results, res)
		fmt.Fprintf(out, "perf: loadgen %-22s capacity %8.0f ctx/s", cfg.Name, res.CapacityOpsPerSec)
		for _, p := range res.Points {
			fmt.Fprintf(out, "  [%.0f%%: %.0f ctx/s p99 %.2fms]",
				100*p.TargetOpsPerSec/res.CapacityOpsPerSec, p.AchievedOpsPerSec, p.LatencyP99Millis)
		}
		fmt.Fprintln(out)
	}
	var base, cand float64
	for _, r := range rep.Results {
		switch r.Name {
		case loadgenBaseline:
			base = r.CapacityOpsPerSec
		case loadgenCandidate:
			cand = r.CapacityOpsPerSec
		}
	}
	if base > 0 && cand > 0 {
		rep.GroupBatchSpeedup = cand / base
		fmt.Fprintf(out, "perf: loadgen speedup %s vs %s at equal durability: %.2fx\n",
			loadgenCandidate, loadgenBaseline, rep.GroupBatchSpeedup)
	}
	return rep, nil
}

// loadgenHarness is one live daemon with fsync-always durability and a
// set of connected clients.
type loadgenHarness struct {
	srv     *daemon.Server
	mw      *middleware.Middleware
	clients []*daemon.Client
	dir     string
}

func startLoadgenHarness(cfg loadgenConfig) (*loadgenHarness, error) {
	dir, err := os.MkdirTemp("", "ctxbench-loadgen-")
	if err != nil {
		return nil, err
	}
	h := &loadgenHarness{dir: dir}
	fail := func(err error) (*loadgenHarness, error) {
		h.close()
		return nil, err
	}
	j, err := wal.Open(wal.Options{
		Dir:         dir,
		Fsync:       wal.FsyncAlways,
		GroupCommit: cfg.GroupCommit,
	})
	if err != nil {
		return fail(err)
	}
	// An empty checker isolates the wire + commit path: the loadgen
	// measures transport and durability, not consistency checking (the
	// figure workloads already cover that).
	h.mw = middleware.New(constraint.NewChecker(), strategy.NewDropBad(),
		middleware.WithJournal(j))
	h.srv, err = daemon.Serve("127.0.0.1:0", h.mw, nil)
	if err != nil {
		return fail(err)
	}
	for i := 0; i < loadgenWorkers; i++ {
		cl, err := daemon.DialOptions(h.srv.Addr().String(), daemon.ClientOptions{
			Timeout:    30 * time.Second,
			WireFormat: cfg.WireFormat,
		})
		if err != nil {
			return fail(err)
		}
		h.clients = append(h.clients, cl)
	}
	return h, nil
}

func (h *loadgenHarness) close() {
	for _, cl := range h.clients {
		_ = cl.Close()
	}
	if h.srv != nil {
		h.srv.Shutdown()
	}
	if h.mw != nil {
		_ = h.mw.CloseJournal()
	}
	if h.dir != "" {
		_ = os.RemoveAll(h.dir)
	}
}

// loadgenFeed hands out unique contexts; each worker owns a subject so
// streams never collide.
type loadgenFeed struct {
	base time.Time
	seqs []atomic.Uint64
}

func newLoadgenFeed() *loadgenFeed {
	return &loadgenFeed{
		base: time.Date(2008, 6, 17, 9, 0, 0, 0, time.UTC),
		seqs: make([]atomic.Uint64, loadgenWorkers),
	}
}

func (f *loadgenFeed) next(worker int) *ctx.Context {
	seq := f.seqs[worker].Add(1)
	subject := fmt.Sprintf("lg%d", worker)
	return ctx.NewLocation(subject, f.base.Add(time.Duration(seq)*time.Millisecond),
		ctx.Point{X: float64(seq)},
		ctx.WithID(ctx.ID(fmt.Sprintf("%s-%d", subject, seq))),
		ctx.WithSeq(seq), ctx.WithSource(subject))
}

// send pushes one operation (a single submit or a whole batch) and
// returns how many contexts it carried.
func loadgenSend(cl *daemon.Client, feed *loadgenFeed, worker, batch int) (int, error) {
	if batch <= 1 {
		if _, err := cl.Submit(feed.next(worker)); err != nil {
			return 0, err
		}
		return 1, nil
	}
	cs := make([]*ctx.Context, batch)
	for i := range cs {
		cs[i] = feed.next(worker)
	}
	results, err := cl.SubmitBatch(cs, 0)
	if err != nil {
		return 0, err
	}
	for _, r := range results {
		if !r.OK {
			return 0, fmt.Errorf("batch item rejected: %s", r.Error)
		}
	}
	return len(cs), nil
}

func measureLoadgenConfig(cfg loadgenConfig, phaseDur time.Duration) (loadgenResult, error) {
	h, err := startLoadgenHarness(cfg)
	if err != nil {
		return loadgenResult{}, err
	}
	defer h.close()
	feed := newLoadgenFeed()
	res := loadgenResult{loadgenConfig: cfg, Fsync: "always", Workers: loadgenWorkers}

	// Phase 1 — fixed-work closed-loop capacity probe. Every
	// configuration submits the same number of contexts, so all of them
	// end the probe with the same pool size and none is penalized for
	// getting through the budget faster.
	budget := int64(phaseDur.Seconds() * loadgenProbeRate)
	if budget < loadgenProbeMin {
		budget = loadgenProbeMin
	}
	ops := (budget + int64(cfg.BatchSize) - 1) / int64(max(cfg.BatchSize, 1))
	var ticket, sent atomic.Int64
	var firstErr atomic.Value
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < loadgenWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ticket.Add(1) <= ops {
				n, err := loadgenSend(h.clients[w], feed, w, cfg.BatchSize)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				sent.Add(int64(n))
			}
		}(w)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return loadgenResult{}, err
	}
	elapsed := time.Since(start)
	res.CapacityOpsPerSec = float64(sent.Load()) / elapsed.Seconds()
	if res.CapacityOpsPerSec <= 0 {
		return loadgenResult{}, fmt.Errorf("probe made no progress")
	}

	// Phase 2 — open-loop points below capacity.
	for _, frac := range []float64{0.5, 0.8} {
		point, err := runOpenLoopPoint(h, feed, cfg, res.CapacityOpsPerSec*frac, phaseDur)
		if err != nil {
			return loadgenResult{}, err
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// runOpenLoopPoint drives the daemon at targetRate contexts/sec. Requests
// are claimed off a global schedule; a worker running late sends
// immediately and the wait shows up as latency.
func runOpenLoopPoint(h *loadgenHarness, feed *loadgenFeed, cfg loadgenConfig, targetRate float64, dur time.Duration) (loadgenPoint, error) {
	opsRate := targetRate / float64(max(cfg.BatchSize, 1))
	interval := time.Duration(float64(time.Second) / opsRate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	var (
		ticket    atomic.Int64
		contexts  atomic.Int64
		firstErr  atomic.Value
		latencies = make([][]time.Duration, loadgenWorkers)
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < loadgenWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := ticket.Add(1) - 1
				offset := time.Duration(i) * interval
				if offset >= dur {
					return
				}
				intended := start.Add(offset)
				if d := time.Until(intended); d > 0 {
					time.Sleep(d)
				}
				n, err := loadgenSend(h.clients[w], feed, w, cfg.BatchSize)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				contexts.Add(int64(n))
				latencies[w] = append(latencies[w], time.Since(intended))
			}
		}(w)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return loadgenPoint{}, err
	}
	elapsed := time.Since(start)

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	if len(all) == 0 {
		return loadgenPoint{}, fmt.Errorf("open-loop point sent nothing")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(all)-1))
		return float64(all[idx]) / float64(time.Millisecond)
	}
	return loadgenPoint{
		TargetOpsPerSec:   targetRate,
		AchievedOpsPerSec: float64(contexts.Load()) / elapsed.Seconds(),
		Contexts:          contexts.Load(),
		DurationSeconds:   elapsed.Seconds(),
		LatencyP50Millis:  pct(0.50),
		LatencyP95Millis:  pct(0.95),
		LatencyP99Millis:  pct(0.99),
		LatencyMaxMillis:  float64(all[len(all)-1]) / float64(time.Millisecond),
	}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
