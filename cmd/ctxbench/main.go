// Command ctxbench regenerates every table and figure of the paper's
// evaluation:
//
//	ctxbench -fig 9          # Figure 9  (Call Forwarding application)
//	ctxbench -fig 10         # Figure 10 (RFID data anomalies application)
//	ctxbench -casestudy      # Section 5.2 survival/precision + rule study
//	ctxbench -ablation       # design-choice ablations (window, bad-marking)
//	ctxbench -all            # everything above
//
// Use -groups to change the number of experiment groups per data point
// (paper: 20), -seed for reproducibility, and -csv to also emit CSV files
// into the given directory.
//
// -parallelism N (N > 1) switches every figure run onto the parallel
// binding evaluator with N checker workers; -parallelism -1 sizes the pool
// to the hardware (GOMAXPROCS). The parallel checker is output-equivalent
// to the serial default, so results are identical — only wall-clock time
// changes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"ctxres/internal/constraint"
	"ctxres/internal/experiment"
	"ctxres/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ctxbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ctxbench", flag.ContinueOnError)
	var (
		fig       = fs.Int("fig", 0, "reproduce figure 9 or 10")
		caseStudy = fs.Bool("casestudy", false, "run the Section 5.2 Landmarc case study")
		ablation  = fs.Bool("ablation", false, "run the design-choice ablations")
		all       = fs.Bool("all", false, "run every experiment")
		groups    = fs.Int("groups", 20, "experiment groups per data point")
		seed      = fs.Int64("seed", 20080617, "base random seed")
		csvDir    = fs.String("csv", "", "also write CSV files into this directory")
		par       = fs.Int("parallelism", 0, "checker workers for the figure runs "+
			"(<=1 serial, -1 = GOMAXPROCS)")
		strats = fs.String("strategies", "", "comma-separated strategy list for the figures "+
			"(default: the paper's four; try OPT-R,D-BAD,D-BAD+I,D-LAT,D-ALL,D-RAND,P-OLD)")
		perf = fs.String("perf", "", "run the perf suite (figure wall-clock, telemetry overhead, "+
			"daemon stage histograms, wire/commit load generator) and write the JSON report to this file")
		loadgenDur = fs.Duration("loadgen-dur", 1500*time.Millisecond,
			"per-phase budget for the -perf load generator (capacity probe and each open-loop point)")
		loadgenOnly = fs.Bool("loadgen-only", false,
			"with -perf: run only the load generator (fast CI smoke)")
		wireFormat = fs.String("wire-format", "both",
			"wire formats the load generator measures: json, binary, or both")
		version = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, telemetry.VersionString("ctxbench"))
		return nil
	}
	switch *wireFormat {
	case "json", "binary", "both":
	default:
		return fmt.Errorf("-wire-format must be json, binary, or both, got %q", *wireFormat)
	}
	if *loadgenDur <= 0 {
		return fmt.Errorf("-loadgen-dur must be > 0, got %v", *loadgenDur)
	}
	if *perf != "" {
		return runPerf(out, *perf, perfOptions{
			groups:      min(*groups, 4),
			seed:        *seed,
			loadgenDur:  *loadgenDur,
			loadgenOnly: *loadgenOnly,
			wireFormat:  *wireFormat,
		})
	}
	if !*all && *fig == 0 && !*caseStudy && !*ablation {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -fig 9, -fig 10, -casestudy, -ablation, -perf FILE or -all")
	}

	cfg := experiment.DefaultFigureConfig()
	cfg.Groups = *groups
	cfg.Seed = *seed
	cfg.Parallelism = *par
	if *par < 0 {
		cfg.Parallelism = constraint.DefaultParallelism()
	}
	if *strats != "" {
		names, err := experiment.ParseStrategies(*strats)
		if err != nil {
			return err
		}
		cfg.Strategies = names
	}

	if *all || *fig == 9 {
		if err := runFigure(out, "Figure 9", experiment.CallForwardingApp(), cfg, *csvDir); err != nil {
			return err
		}
	}
	if *all || *fig == 10 {
		if err := runFigure(out, "Figure 10", experiment.RFIDApp(), cfg, *csvDir); err != nil {
			return err
		}
	}
	if *all || *caseStudy {
		csCfg := experiment.DefaultCaseStudyConfig()
		csCfg.Seed = *seed
		if *groups < csCfg.Groups {
			csCfg.Groups = *groups
		}
		res, err := experiment.RunCaseStudy(csCfg)
		if err != nil {
			return fmt.Errorf("case study: %w", err)
		}
		fmt.Fprintln(out, experiment.FormatCaseStudy(res))
	}
	if *all || *ablation {
		abl, err := experiment.RunAblations(experiment.AblationConfig{
			Groups: min(*groups, 8),
			Seed:   *seed,
		})
		if err != nil {
			return fmt.Errorf("ablations: %w", err)
		}
		fmt.Fprintln(out, experiment.FormatAblations(abl))
	}
	return nil
}

func runFigure(out io.Writer, title string, spec experiment.AppSpec, cfg experiment.FigureConfig, csvDir string) error {
	fig, err := experiment.RunFigure(spec, cfg)
	if err != nil {
		return fmt.Errorf("%s: %w", title, err)
	}
	fmt.Fprintln(out, experiment.FormatFigure(fig, title))
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return fmt.Errorf("%s: %w", title, err)
		}
		path := filepath.Join(csvDir, fig.App+".csv")
		if err := os.WriteFile(path, []byte(experiment.FigureCSV(fig)), 0o644); err != nil {
			return fmt.Errorf("%s: %w", title, err)
		}
		fmt.Fprintf(out, "  csv written to %s\n\n", path)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
