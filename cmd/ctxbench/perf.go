package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"

	"ctxres/internal/constraint"
	"ctxres/internal/ctx"
	"ctxres/internal/daemon"
	"ctxres/internal/experiment"
	"ctxres/internal/middleware"
	"ctxres/internal/telemetry"
	"ctxres/internal/wal"
)

// perfReport is the machine-readable perf trajectory `make bench` writes
// to BENCH_9.json: wall-clock for the Figure 9/10 workloads, the
// telemetry overhead measured on the same workloads, and the daemon's
// per-stage latency histograms after a real TCP run.
type perfReport struct {
	Generated string            `json:"generated"`
	Build     telemetry.Build   `json:"build"`
	Figures   []figurePerf      `json:"figures,omitempty"`
	Telemetry []telemetryPerf   `json:"telemetryOverhead,omitempty"`
	Tracing   []tracingPerf     `json:"tracingOverhead,omitempty"`
	Daemon    *daemonPerf       `json:"daemon,omitempty"`
	Push      *pushPerf         `json:"push,omitempty"`
	Loadgen   *loadgenReport    `json:"loadgen,omitempty"`
	Notes     map[string]string `json:"notes,omitempty"`
}

type figurePerf struct {
	Name        string  `json:"name"`
	App         string  `json:"app"`
	Groups      int     `json:"groups"`
	ErrRates    int     `json:"errRates"`
	Strategies  int     `json:"strategies"`
	WallSeconds float64 `json:"wallSeconds"`
}

// telemetryPerf compares one figure workload replayed through the
// middleware with and without a telemetry registry installed.
type telemetryPerf struct {
	App              string  `json:"app"`
	Contexts         int     `json:"contexts"`
	Repeats          int     `json:"repeats"`
	BaselineNsPerCtx float64 `json:"baselineNsPerCtx"`
	InstrumentedNs   float64 `json:"instrumentedNsPerCtx"`
	OverheadPct      float64 `json:"overheadPct"`
}

// tracingPerf compares one figure workload replayed through the
// middleware with distributed tracing off against the production
// configuration: a span sink installed and 1% of submissions sampled.
type tracingPerf struct {
	App              string  `json:"app"`
	Contexts         int     `json:"contexts"`
	Repeats          int     `json:"repeats"`
	SampleRate       float64 `json:"sampleRate"`
	BaselineNsPerCtx float64 `json:"baselineNsPerCtx"`
	TracedNsPerCtx   float64 `json:"tracedNsPerCtx"`
	OverheadPct      float64 `json:"overheadPct"`
}

// daemonPerf is the result of driving a figure workload through a real
// ctxmwd-style server over TCP with telemetry and a WAL attached: the
// stage histograms the acceptance criteria require to be non-empty.
type daemonPerf struct {
	Submits    int                                   `json:"submits"`
	Uses       int                                   `json:"uses"`
	Histograms map[string]telemetry.HistogramSummary `json:"histograms"`
}

// pushPerf is the submit→activation→push round trip measured end to end
// from a subscribed client: the clock starts before the Submit that flips
// the situation and stops when the pushed event reaches the client's
// handler over the same TCP connection. ServerPush is the server-side
// ctxres_push_seconds histogram (event enqueue to frame flush).
type pushPerf struct {
	Toggles       int                        `json:"toggles"`
	EndToEndP50Ms float64                    `json:"endToEndP50Millis"`
	EndToEndP99Ms float64                    `json:"endToEndP99Millis"`
	EndToEndMaxMs float64                    `json:"endToEndMaxMillis"`
	ServerPush    telemetry.HistogramSummary `json:"serverPushSeconds"`
}

// perfOptions tunes the perf suite run.
type perfOptions struct {
	groups      int
	seed        int64
	loadgenDur  time.Duration // per-phase budget for the load generator
	loadgenOnly bool          // skip figures/overhead/daemon phases (CI smoke)
	wireFormat  string        // restrict loadgen configs: json, binary, or both
}

// runPerf executes the perf suite and writes the JSON report to path.
func runPerf(out io.Writer, path string, opts perfOptions) error {
	rep := perfReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Build:     telemetry.BuildInfo(),
		Notes: map[string]string{
			"overhead": "same workload replayed through RunOnce with and without a telemetry registry; single-process wall clock, not a statistical benchmark",
			"tracing":  "same workload replayed through the middleware with tracing off vs a span sink plus 1% sampling; fastest of interleaved runs per side",
			"daemon":   "figure workload over TCP against an in-process daemon with telemetry and an fsync-always WAL; histogram unit is seconds",
			"loadgen":  "open-loop coordinated-omission-safe load generator over TCP; all configs fsync=always; see loadgen.method",
			"push":     "submit→activation→push round trip from a subscribed client over TCP (empty checker: transport + evaluation cost, no constraint checking); serverPushSeconds is enqueue→flush",
		},
	}
	if opts.loadgenOnly {
		lg, err := runLoadgen(out, opts.loadgenDur, opts.wireFormat)
		if err != nil {
			return fmt.Errorf("loadgen phase: %w", err)
		}
		rep.Loadgen = lg
		return writePerfReport(out, path, rep)
	}

	groups, seed := opts.groups, opts.seed
	cfg := experiment.DefaultFigureConfig()
	cfg.Groups = groups
	cfg.Seed = seed
	for _, fig := range []struct {
		name string
		spec experiment.AppSpec
	}{
		{"figure9", experiment.CallForwardingApp()},
		{"figure10", experiment.RFIDApp()},
	} {
		start := time.Now()
		if _, err := experiment.RunFigure(fig.spec, cfg); err != nil {
			return fmt.Errorf("%s: %w", fig.name, err)
		}
		rep.Figures = append(rep.Figures, figurePerf{
			Name:        fig.name,
			App:         fig.spec.Name,
			Groups:      cfg.Groups,
			ErrRates:    len(cfg.ErrRates),
			Strategies:  len(cfg.Strategies),
			WallSeconds: time.Since(start).Seconds(),
		})
		fmt.Fprintf(out, "perf: %s (%s) in %.2fs\n",
			fig.name, fig.spec.Name, rep.Figures[len(rep.Figures)-1].WallSeconds)
	}

	for _, spec := range []experiment.AppSpec{experiment.CallForwardingApp(), experiment.RFIDApp()} {
		tp, err := measureOverhead(spec, seed)
		if err != nil {
			return fmt.Errorf("overhead %s: %w", spec.Name, err)
		}
		rep.Telemetry = append(rep.Telemetry, tp)
		fmt.Fprintf(out, "perf: telemetry overhead on %s: %.0f -> %.0f ns/ctx (%+.1f%%)\n",
			tp.App, tp.BaselineNsPerCtx, tp.InstrumentedNs, tp.OverheadPct)
	}

	for _, spec := range []experiment.AppSpec{experiment.CallForwardingApp(), experiment.RFIDApp()} {
		tp, err := measureTracingOverhead(spec, seed)
		if err != nil {
			return fmt.Errorf("tracing overhead %s: %w", spec.Name, err)
		}
		rep.Tracing = append(rep.Tracing, tp)
		fmt.Fprintf(out, "perf: tracing overhead on %s at %.0f%% sampling: %.0f -> %.0f ns/ctx (%+.1f%%)\n",
			tp.App, tp.SampleRate*100, tp.BaselineNsPerCtx, tp.TracedNsPerCtx, tp.OverheadPct)
	}

	dp, err := measureDaemon(seed)
	if err != nil {
		return fmt.Errorf("daemon phase: %w", err)
	}
	rep.Daemon = &dp
	fmt.Fprintf(out, "perf: daemon run: %d submits, %d uses, %d histograms captured\n",
		dp.Submits, dp.Uses, len(dp.Histograms))

	pp, err := measurePush()
	if err != nil {
		return fmt.Errorf("push phase: %w", err)
	}
	rep.Push = &pp
	fmt.Fprintf(out, "perf: push round trip: p50 %.3fms p99 %.3fms over %d toggles\n",
		pp.EndToEndP50Ms, pp.EndToEndP99Ms, pp.Toggles)

	lg, err := runLoadgen(out, opts.loadgenDur, opts.wireFormat)
	if err != nil {
		return fmt.Errorf("loadgen phase: %w", err)
	}
	rep.Loadgen = lg

	return writePerfReport(out, path, rep)
}

func writePerfReport(out io.Writer, path string, rep perfReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "perf: wrote %s\n", path)
	return nil
}

// measureOverhead replays one workload repeatedly with and without a
// registry. The runs interleave so machine drift hits both sides.
func measureOverhead(spec experiment.AppSpec, seed int64) (telemetryPerf, error) {
	rng := rand.New(rand.NewSource(seed))
	w, err := spec.NewWorkload(0.2, rng)
	if err != nil {
		return telemetryPerf{}, err
	}
	const repeats = 3
	var base, instr time.Duration
	for i := 0; i < repeats; i++ {
		for _, instrumented := range []bool{false, true} {
			opts := experiment.RunOptions{}
			if instrumented {
				opts.Telemetry = telemetry.NewRegistry()
			}
			start := time.Now()
			if _, err := experiment.RunOnceOpts(spec, w, experiment.DBad,
				rand.New(rand.NewSource(seed)), opts); err != nil {
				return telemetryPerf{}, err
			}
			if instrumented {
				instr += time.Since(start)
			} else {
				base += time.Since(start)
			}
		}
	}
	n := float64(w.Contexts() * repeats)
	tp := telemetryPerf{
		App:              spec.Name,
		Contexts:         w.Contexts(),
		Repeats:          repeats,
		BaselineNsPerCtx: float64(base.Nanoseconds()) / n,
		InstrumentedNs:   float64(instr.Nanoseconds()) / n,
	}
	if base > 0 {
		tp.OverheadPct = (float64(instr)/float64(base) - 1) * 100
	}
	return tp, nil
}

// measureTracingOverhead replays one workload through the middleware
// with tracing off and with the production tracing configuration — a
// span sink installed and 1% of submissions rooted in a fresh trace.
// Each side keeps its fastest of several interleaved runs, so the
// reported overhead reflects the instrumentation, not machine drift.
func measureTracingOverhead(spec experiment.AppSpec, seed int64) (tracingPerf, error) {
	const (
		repeats    = 5
		sampleRate = 0.01
	)
	w, err := spec.NewWorkload(0.2, rand.New(rand.NewSource(seed)))
	if err != nil {
		return tracingPerf{}, err
	}
	replay := func(traced bool) (time.Duration, error) {
		strat, err := experiment.NewStrategy(experiment.DBad, rand.New(rand.NewSource(seed)), nil)
		if err != nil {
			return 0, err
		}
		var mwOpts []middleware.Option
		var spans *telemetry.SpanWriter
		var sampler *telemetry.Sampler
		if traced {
			spans = telemetry.NewSpanWriter(io.Discard)
			sampler = telemetry.NewSampler(sampleRate)
			mwOpts = append(mwOpts, middleware.WithSpanSink(spans))
		}
		m := middleware.New(spec.NewChecker(), strat, mwOpts...)
		start := time.Now()
		for _, step := range w.Steps {
			for _, c := range step {
				var so middleware.SubmitOptions
				if sampler.Sample() {
					so.Trace = telemetry.TraceContext{TraceID: telemetry.NewTraceID()}
				}
				if _, err := m.SubmitOpts(c.Clone(), so); err != nil {
					return 0, err
				}
			}
		}
		elapsed := time.Since(start)
		if spans != nil {
			if err := spans.Close(); err != nil {
				return 0, err
			}
		}
		return elapsed, nil
	}

	var base, traced time.Duration
	for i := 0; i < repeats; i++ {
		for _, on := range []bool{false, true} {
			d, err := replay(on)
			if err != nil {
				return tracingPerf{}, err
			}
			if on && (traced == 0 || d < traced) {
				traced = d
			}
			if !on && (base == 0 || d < base) {
				base = d
			}
		}
	}
	n := float64(w.Contexts())
	tp := tracingPerf{
		App:              spec.Name,
		Contexts:         w.Contexts(),
		Repeats:          repeats,
		SampleRate:       sampleRate,
		BaselineNsPerCtx: float64(base.Nanoseconds()) / n,
		TracedNsPerCtx:   float64(traced.Nanoseconds()) / n,
	}
	if base > 0 {
		tp.OverheadPct = (float64(traced)/float64(base) - 1) * 100
	}
	return tp, nil
}

// measureDaemon boots a telemetry-instrumented server with an
// fsync-always WAL, replays a Call Forwarding workload over TCP, and
// extracts the stage histograms from the stats op.
func measureDaemon(seed int64) (daemonPerf, error) {
	spec := experiment.CallForwardingApp()
	w, err := spec.NewWorkload(0.2, rand.New(rand.NewSource(seed)))
	if err != nil {
		return daemonPerf{}, err
	}
	strat, err := experiment.NewStrategy(experiment.DBad, rand.New(rand.NewSource(seed)), nil)
	if err != nil {
		return daemonPerf{}, err
	}
	dir, err := os.MkdirTemp("", "ctxbench-wal-")
	if err != nil {
		return daemonPerf{}, err
	}
	defer os.RemoveAll(dir)

	reg := telemetry.NewRegistry()
	j, err := wal.Open(wal.Options{
		Dir:      dir,
		Fsync:    wal.FsyncAlways,
		Observer: middleware.NewWALObserver(reg),
	})
	if err != nil {
		return daemonPerf{}, err
	}
	mw := middleware.New(spec.NewChecker(), strat,
		middleware.WithTelemetry(reg),
		middleware.WithJournal(j))
	defer mw.CloseJournal()
	srv, err := daemon.Serve("127.0.0.1:0", mw, spec.NewEngine(), daemon.WithTelemetry(reg))
	if err != nil {
		return daemonPerf{}, err
	}
	defer srv.Shutdown()
	client, err := daemon.Dial(srv.Addr().String(), 10*time.Second)
	if err != nil {
		return daemonPerf{}, err
	}
	defer client.Close()

	dp := daemonPerf{Histograms: map[string]telemetry.HistogramSummary{}}
	for _, step := range w.Steps {
		for _, c := range step {
			if _, err := client.Submit(c.Clone()); err != nil {
				return daemonPerf{}, fmt.Errorf("submit: %w", err)
			}
			dp.Submits++
			// Use immediately: the daemon phase measures latency, not the
			// paper's delayed-use quality metrics.
			if _, err := client.Use(c.ID); err == nil {
				dp.Uses++
			}
		}
	}

	snap, err := client.Telemetry()
	if err != nil {
		return daemonPerf{}, err
	}
	if snap == nil {
		return daemonPerf{}, fmt.Errorf("stats op carried no telemetry snapshot")
	}
	// The acceptance set: check, resolve, wal_fsync, and request latency
	// must all have observations after the run.
	for short, key := range map[string]string{
		"check":          `ctxres_stage_seconds{stage="check"}`,
		"resolve":        `ctxres_stage_seconds{stage="resolve"}`,
		"journal_append": `ctxres_stage_seconds{stage="journal_append"}`,
		"wal_append":     "ctxres_wal_append_seconds",
		"wal_fsync":      "ctxres_wal_fsync_seconds",
		"request_submit": `ctxres_request_seconds{op="submit"}`,
		"request_use":    `ctxres_request_seconds{op="use"}`,
	} {
		hs, ok := snap.Histograms[key]
		if !ok || hs.Count == 0 {
			return daemonPerf{}, fmt.Errorf("histogram %s empty after daemon run", key)
		}
		dp.Histograms[short] = hs
	}
	return dp, nil
}

// pushArrival is one pushed event with the wall-clock time the client
// handler saw it.
type pushArrival struct {
	ev daemon.WireEvent
	at time.Time
}

// measurePush measures the submit→activation→push round trip: a client
// subscribes an inline formula, then repeatedly flips the situation — a
// short-TTL submission activates it, a later submission for another
// subject sweeps the expiry and deactivates it — timing each activation
// from just before the Submit to the handler firing.
func measurePush() (pushPerf, error) {
	reg := telemetry.NewRegistry()
	// An empty checker isolates the push path: the daemon and loadgen
	// phases already price constraint checking.
	strat, err := experiment.NewStrategy(experiment.DBad, rand.New(rand.NewSource(1)), nil)
	if err != nil {
		return pushPerf{}, err
	}
	mw := middleware.New(constraint.NewChecker(), strat,
		middleware.WithTelemetry(reg))
	srv, err := daemon.Serve("127.0.0.1:0", mw, nil, daemon.WithTelemetry(reg))
	if err != nil {
		return pushPerf{}, err
	}
	defer srv.Shutdown()
	client, err := daemon.Dial(srv.Addr().String(), 10*time.Second)
	if err != nil {
		return pushPerf{}, err
	}
	defer client.Close()

	events := make(chan pushArrival, 64)
	err = client.SubscribeFormula("bench",
		`exists a: location . subjectIs(a, "bench-subject")`,
		func(_ string, ev daemon.WireEvent) {
			events <- pushArrival{ev: ev, at: time.Now()}
		})
	if err != nil {
		return pushPerf{}, fmt.Errorf("subscribe: %w", err)
	}
	next := func(want string) (pushArrival, error) {
		select {
		case a := <-events:
			if a.ev.Type != want {
				return a, fmt.Errorf("pushed %s %s, want %s", a.ev.Situation, a.ev.Type, want)
			}
			return a, nil
		case <-time.After(5 * time.Second):
			return pushArrival{}, fmt.Errorf("no %s push within 5s", want)
		}
	}

	base := time.Date(2008, 6, 17, 9, 0, 0, 0, time.UTC)
	const toggles = 200
	lat := make([]time.Duration, 0, toggles)
	var seq uint64
	for i := 0; i < toggles; i++ {
		seq++
		c := ctx.NewLocation("bench-subject", base.Add(time.Duration(seq)*time.Second),
			ctx.Point{}, ctx.WithSeq(seq), ctx.WithSource("bench"),
			ctx.WithTTL(2*time.Second))
		start := time.Now()
		if _, err := client.Submit(c); err != nil {
			return pushPerf{}, fmt.Errorf("toggle submit: %w", err)
		}
		act, err := next("activated")
		if err != nil {
			return pushPerf{}, err
		}
		lat = append(lat, act.at.Sub(start))
		// Sweep the TTL so the next round activates again.
		seq += 4
		w := ctx.NewLocation("bench-walker", base.Add(time.Duration(seq)*time.Second),
			ctx.Point{}, ctx.WithSeq(seq), ctx.WithSource("bench"),
			ctx.WithTTL(10*time.Second))
		if _, err := client.Submit(w); err != nil {
			return pushPerf{}, fmt.Errorf("sweep submit: %w", err)
		}
		if _, err := next("deactivated"); err != nil {
			return pushPerf{}, err
		}
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	ms := func(q float64) float64 {
		idx := int(q * float64(len(lat)))
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		return float64(lat[idx].Nanoseconds()) / 1e6
	}
	pp := pushPerf{
		Toggles:       toggles,
		EndToEndP50Ms: ms(0.50),
		EndToEndP99Ms: ms(0.99),
		EndToEndMaxMs: float64(lat[len(lat)-1].Nanoseconds()) / 1e6,
	}
	snap, err := client.Telemetry()
	if err != nil {
		return pushPerf{}, err
	}
	if snap == nil {
		return pushPerf{}, fmt.Errorf("stats op carried no telemetry snapshot")
	}
	hs, ok := snap.Histograms["ctxres_push_seconds"]
	if !ok || hs.Count == 0 {
		return pushPerf{}, fmt.Errorf("ctxres_push_seconds empty after push run")
	}
	pp.ServerPush = hs
	return pp, nil
}
