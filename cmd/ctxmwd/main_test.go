package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ctxres/internal/ctx"
	"ctxres/internal/daemon"
	"ctxres/internal/middleware"
	"ctxres/internal/telemetry"
)

func TestProfiles(t *testing.T) {
	for _, app := range []string{"callforward", "rfid"} {
		checker, engine, err := profile(app)
		if err != nil {
			t.Fatalf("profile(%s): %v", app, err)
		}
		if len(checker.Constraints()) != 5 {
			t.Fatalf("%s constraints = %d", app, len(checker.Constraints()))
		}
		if len(engine.Situations()) != 3 {
			t.Fatalf("%s situations = %d", app, len(engine.Situations()))
		}
	}
	if _, _, err := profile("bogus"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestSetupServesAndResponds(t *testing.T) {
	d, err := setup([]string{"-addr", "127.0.0.1:0", "-app", "rfid", "-strategy", "D-LAT"})
	if err != nil {
		t.Fatal(err)
	}
	defer d.srv.Shutdown()
	client, err := daemon.Dial(d.srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestSetupVersionExitsCleanly(t *testing.T) {
	d, err := setup([]string{"-version"})
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		d.srv.Shutdown()
		t.Fatal("-version started a daemon")
	}
	if v := telemetry.VersionString("ctxmwd"); !strings.Contains(v, "ctxmwd") || !strings.Contains(v, "go") {
		t.Fatalf("version string = %q", v)
	}
}

func TestSetupParallelismReachesChecker(t *testing.T) {
	d, err := setup([]string{"-addr", "127.0.0.1:0", "-parallelism", "4"})
	if err != nil {
		t.Fatal(err)
	}
	defer d.srv.Shutdown()
	client, err := daemon.Dial(d.srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	t0 := time.Date(2008, 6, 17, 9, 0, 0, 0, time.UTC)
	for i := 1; i <= 2; i++ {
		c := ctx.NewLocation("peter", t0.Add(time.Duration(i)*time.Second),
			ctx.Point{X: float64(i)},
			ctx.WithSeq(uint64(i)), ctx.WithSource("s"))
		if _, err := client.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	mwStats, _, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if mwStats.Shards == 0 {
		t.Fatalf("stats = %+v, want shard dispatches from the parallel checker", mwStats)
	}
	// -parallelism -1 sizes the pool from GOMAXPROCS and must also serve.
	d2, err := setup([]string{"-addr", "127.0.0.1:0", "-parallelism", "-1"})
	if err != nil {
		t.Fatal(err)
	}
	d2.srv.Shutdown()
}

func TestSetupErrors(t *testing.T) {
	if _, err := setup([]string{"-app", "bogus"}); err == nil {
		t.Fatal("bad app accepted")
	}
	if _, err := setup([]string{"-strategy", "bogus"}); err == nil {
		t.Fatal("bad strategy accepted")
	}
	if _, err := setup([]string{"-constraints", "/does/not/exist"}); err == nil {
		t.Fatal("missing constraints file accepted")
	}
	if _, err := setup([]string{"-addr", "256.256.256.256:1"}); err == nil {
		t.Fatal("bad address accepted")
	}
	if _, err := setup([]string{"-addr", "127.0.0.1:0", "-metrics-addr", "256.256.256.256:1"}); err == nil {
		t.Fatal("bad metrics address accepted")
	}
	if _, err := setup([]string{"-span-log", filepath.Join(t.TempDir(), "no", "such", "dir", "s.jsonl")}); err == nil {
		t.Fatal("unopenable span log accepted")
	}
}

func TestSetupFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"negative idle", []string{"-idle-timeout", "-1s"}, "-idle-timeout"},
		{"zero drain", []string{"-drain-timeout", "0"}, "-drain-timeout"},
		{"negative drain", []string{"-drain-timeout", "-2s"}, "-drain-timeout"},
		{"negative snapshot", []string{"-snapshot-interval", "-1m"}, "-snapshot-interval"},
		{"negative compact", []string{"-compact-interval", "-1m"}, "-compact-interval"},
		{"negative max-pending", []string{"-max-pending", "-1"}, "-max-pending"},
		{"negative degrade-at", []string{"-degrade-at", "-1"}, "-degrade-at"},
		{"negative resume-at", []string{"-resume-at", "-1"}, "-resume-at"},
		{"resume above degrade", []string{"-degrade-at", "4", "-resume-at", "4"}, "-resume-at"},
		{"negative check-timeout", []string{"-check-timeout", "-1s"}, "-check-timeout"},
		{"trip over one", []string{"-breaker-trip", "1.5"}, "-breaker-trip"},
		{"negative trip", []string{"-breaker-trip", "-0.1"}, "-breaker-trip"},
		{"negative window", []string{"-breaker-window", "-8"}, "-breaker-window"},
		{"negative cooldown", []string{"-breaker-cooldown", "-30s"}, "-breaker-cooldown"},
		{"zero max-subscribers", []string{"-max-subscribers", "0"}, "-max-subscribers"},
		{"below unlimited", []string{"-max-subscribers", "-2"}, "-max-subscribers"},
		{"zero sub-queue", []string{"-sub-queue", "0"}, "-sub-queue"},
		{"negative sub-queue", []string{"-sub-queue", "-4"}, "-sub-queue"},
		{"router without shards", []string{"-router"}, "-shards"},
		{"shards without router", []string{"-shards", "127.0.0.1:1"}, "-router"},
		{"router with follow", []string{"-router", "-shards", "127.0.0.1:1", "-follow", "127.0.0.1:2"}, "mutually exclusive"},
		{"router with data-dir", []string{"-router", "-shards", "127.0.0.1:1", "-data-dir", "/tmp/x"}, "-data-dir"},
		{"follow without data-dir", []string{"-follow", "127.0.0.1:1"}, "-data-dir"},
		{"negative promote-after", []string{"-follow", "127.0.0.1:1", "-data-dir", "/tmp/x", "-promote-after", "-1s"}, "-promote-after"},
		{"promote-after without follow", []string{"-promote-after", "5s"}, "-follow"},
		{"negative lease-ttl", []string{"-lease-ttl", "-1s"}, "-lease-ttl"},
		{"lease-ttl without data-dir", []string{"-lease-ttl", "2s"}, "-data-dir"},
		{"lease-ttl on router", []string{"-router", "-shards", "127.0.0.1:1", "-lease-ttl", "2s"}, "-lease-ttl"},
		{"lease-ttl at promote-after", []string{"-follow", "127.0.0.1:1", "-data-dir", "/tmp/x",
			"-promote-after", "5s", "-lease-ttl", "5s"}, "-lease-ttl"},
		{"lease-ttl above promote-after", []string{"-follow", "127.0.0.1:1", "-data-dir", "/tmp/x",
			"-promote-after", "5s", "-lease-ttl", "6s"}, "-lease-ttl"},
		{"replica set with empty member", []string{"-router", "-shards", "127.0.0.1:1|"}, "-shards"},
		{"replica set with duplicate member", []string{"-router", "-shards", "127.0.0.1:1|127.0.0.1:1"}, "-shards"},
		{"duplicate member across sets", []string{"-router", "-shards", "127.0.0.1:1|127.0.0.1:2,127.0.0.1:2|127.0.0.1:3"}, "-shards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{"-addr", "127.0.0.1:0"}, tc.args...)
			d, err := setup(args)
			if err == nil {
				d.srv.Shutdown()
				t.Fatalf("setup(%v) accepted an invalid value", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %s", err, tc.want)
			}
		})
	}
	// Zero stays the documented "disabled" setting where it is one.
	d, err := setup([]string{"-addr", "127.0.0.1:0",
		"-idle-timeout", "0", "-snapshot-interval", "0", "-compact-interval", "0"})
	if err != nil {
		t.Fatal(err)
	}
	d.srv.Shutdown()
}

// TestSetupResilienceFlagsWire proves -degrade-at and -breaker-trip reach
// the middleware: a submission under a degrade-at of 1 is deferred, and
// the stats op carries a health snapshot once breakers are on.
func TestSetupResilienceFlagsWire(t *testing.T) {
	d, err := setup([]string{"-addr", "127.0.0.1:0",
		"-max-pending", "64", "-degrade-at", "1",
		"-check-timeout", "5s", "-breaker-trip", "0.9"})
	if err != nil {
		t.Fatal(err)
	}
	defer d.srv.Shutdown()
	client, err := daemon.Dial(d.srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	t0 := time.Date(2008, 6, 17, 9, 0, 0, 0, time.UTC)
	c := ctx.NewLocation("peter", t0, ctx.Point{X: 1},
		ctx.WithSeq(1), ctx.WithSource("s"))
	if _, err := client.Submit(c); err != nil {
		t.Fatal(err)
	}
	rs, hs, err := client.Resilience()
	if err != nil {
		t.Fatal(err)
	}
	if rs.DeferredChecks != 1 {
		t.Fatalf("resilience = %+v, want the submission deferred under -degrade-at 1", rs)
	}
	if hs == nil {
		t.Fatal("no health snapshot despite -breaker-trip")
	}
}

// TestSetupSubscriptionFlagsWire proves -max-subscribers and -sub-queue
// reach the daemon: under a cap of 1 the first subscription registers and
// the second is refused with the typed server-busy code.
func TestSetupSubscriptionFlagsWire(t *testing.T) {
	d, err := setup([]string{"-addr", "127.0.0.1:0",
		"-max-subscribers", "1", "-sub-queue", "8"})
	if err != nil {
		t.Fatal(err)
	}
	defer d.srv.Shutdown()
	client, err := daemon.Dial(d.srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	formula := `exists a: location . subjectIs(a, "peter")`
	if err := client.SubscribeFormula("s1", formula, func(string, daemon.WireEvent) {}); err != nil {
		t.Fatalf("first subscribe: %v", err)
	}
	err = client.SubscribeFormula("s2", formula, func(string, daemon.WireEvent) {})
	if daemon.ErrorCode(err) != daemon.CodeBusy {
		t.Fatalf("second subscribe = %v, want %s", err, daemon.CodeBusy)
	}
	if st := d.srv.Stats(); st.Subscribers != 1 {
		t.Fatalf("subscribers = %d, want 1", st.Subscribers)
	}
}

func TestSetupWithConstraintsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "set.ctx")
	content := `constraint velocity
forall a: location .
  forall b: location .
    (sameSubject(a, b) and streamAdjacent(a, b)) implies velocityBelow(a, b, 1.5)
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := setup([]string{"-addr", "127.0.0.1:0", "-constraints", path})
	if err != nil {
		t.Fatal(err)
	}
	defer d.srv.Shutdown()

	client, err := daemon.Dial(d.srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	t0 := time.Date(2008, 6, 17, 9, 0, 0, 0, time.UTC)
	mk := func(id string, seq uint64, x float64) *ctx.Context {
		return ctx.NewLocation("peter", t0.Add(time.Duration(seq)*time.Second),
			ctx.Point{X: x},
			ctx.WithID(ctx.ID(id)), ctx.WithSeq(seq), ctx.WithSource("s"))
	}
	if _, err := client.Submit(mk("a", 1, 0)); err != nil {
		t.Fatal(err)
	}
	vios, err := client.Submit(mk("b", 2, 9))
	if err != nil {
		t.Fatal(err)
	}
	if len(vios) != 1 || vios[0].Constraint != "velocity" {
		t.Fatalf("violations = %+v, want the loaded constraint to fire", vios)
	}

	// The bad constraints-file branch.
	badPath := filepath.Join(dir, "bad.ctx")
	if err := os.WriteFile(badPath, []byte("constraint x\nnope(a)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := setup([]string{"-addr", "127.0.0.1:0", "-constraints", badPath}); err == nil {
		t.Fatal("bad constraints file accepted")
	}
}

func TestSetupDurabilityRecoversAcrossRestart(t *testing.T) {
	dataDir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-data-dir", dataDir,
		"-fsync", "always", "-snapshot-interval", "0", "-compact-interval", "0"}

	d, err := setup(args)
	if err != nil {
		t.Fatal(err)
	}
	client, err := daemon.Dial(d.srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2008, 6, 17, 9, 0, 0, 0, time.UTC)
	for i := 1; i <= 4; i++ {
		c := ctx.NewLocation("peter", t0.Add(time.Duration(i)*time.Second),
			ctx.Point{X: float64(i)},
			ctx.WithID(ctx.ID(string(rune('a'+i)))), ctx.WithSeq(uint64(i)), ctx.WithSource("s"))
		if _, err := client.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	before, beforePool, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	js, err := client.JournalStats()
	if err != nil {
		t.Fatal(err)
	}
	if js == nil || js.Records == 0 {
		t.Fatalf("journal stats = %+v, want records from -data-dir mode", js)
	}
	client.Close()
	d.srv.Shutdown()
	if err := d.stop(); err != nil {
		t.Fatal(err)
	}

	// Restart against the same directory: state must come back.
	d2, err := setup(args)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.srv.Shutdown()
	client2, err := daemon.Dial(d2.srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	after, afterPool, err := client2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if after.Submitted != before.Submitted {
		t.Fatalf("submitted = %d after restart, want %d", after.Submitted, before.Submitted)
	}
	if afterPool.Available != beforePool.Available {
		t.Fatalf("available contexts = %d after restart, want %d", afterPool.Available, beforePool.Available)
	}
	if err := d2.stop(); err != nil {
		t.Fatal(err)
	}
}

// TestSetupMetricsEndpoint boots the daemon end to end with -metrics-addr
// and -span-log, drives protocol traffic, and asserts the scraped
// exposition is valid and agrees with the stats op, /healthz is green,
// /statusz carries build info and config, and the span log received one
// JSON line per operation.
func TestSetupMetricsEndpoint(t *testing.T) {
	spanPath := filepath.Join(t.TempDir(), "spans.jsonl")
	d, err := setup([]string{
		"-addr", "127.0.0.1:0",
		"-metrics-addr", "127.0.0.1:0",
		"-span-log", spanPath,
		"-data-dir", t.TempDir(),
		"-fsync", "always", "-snapshot-interval", "0", "-compact-interval", "0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.ops == nil {
		t.Fatal("no ops server despite -metrics-addr")
	}
	client, err := daemon.Dial(d.srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	t0 := time.Date(2008, 6, 17, 9, 0, 0, 0, time.UTC)
	x := 0.0
	for i := 1; i <= 10; i++ {
		x += 1
		if i%4 == 0 {
			x += 9 // force velocity violations so check/resolve stages run hot
		}
		c := ctx.NewLocation("peter", t0.Add(time.Duration(i)*time.Second),
			ctx.Point{X: x},
			ctx.WithID(ctx.ID(fmt.Sprintf("m-%02d", i))), ctx.WithSeq(uint64(i)), ctx.WithSource("s"))
		if _, err := client.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Use("m-01"); err != nil && !errors.Is(err, middleware.ErrInconsistent) {
		t.Fatal(err)
	}
	mwStats, _, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}

	base := "http://" + d.ops.Addr().String()
	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if err := telemetry.ValidateExposition([]byte(body)); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	want := fmt.Sprintf("ctxres_submits_total %d", mwStats.Submitted)
	if !strings.Contains(body, want) {
		t.Fatalf("exposition missing %q:\n%s", want, body)
	}
	for _, name := range []string{
		`ctxres_stage_seconds_bucket{stage="check",le="+Inf"}`,
		`ctxres_stage_seconds_bucket{stage="resolve",le="+Inf"}`,
		`ctxres_wal_fsync_seconds_count`,
		`ctxres_request_seconds_bucket{op="submit",le="+Inf"}`,
	} {
		if !strings.Contains(body, name) {
			t.Fatalf("exposition missing %s:\n%s", name, body)
		}
	}

	if code, body = get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body = get("/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz = %d", code)
	}
	var status struct {
		Build       telemetry.Build `json:"build"`
		App         string          `json:"app"`
		Strategy    string          `json:"strategy"`
		PoolCtxs    int             `json:"poolContexts"`
		Parallelism int             `json:"parallelism"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("statusz not JSON: %v\n%s", err, body)
	}
	if status.Build.GoVersion == "" || status.App != "callforward" || status.Strategy == "" {
		t.Fatalf("statusz incomplete: %s", body)
	}
	if status.PoolCtxs == 0 {
		t.Fatalf("statusz pool empty after submissions: %s", body)
	}

	client.Close()
	d.srv.Shutdown()
	if err := d.stop(); err != nil {
		t.Fatal(err)
	}

	// The span log holds one JSON line per pipeline operation.
	f, err := os.Open(spanPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var submitSpans int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var sp telemetry.Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("span line not JSON: %v: %s", err, sc.Text())
		}
		if sp.Op == "submit" {
			submitSpans++
			if len(sp.Stages) == 0 {
				t.Fatalf("submit span has no stages: %s", sc.Text())
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if submitSpans != mwStats.Submitted {
		t.Fatalf("span log has %d submit spans, want %d", submitSpans, mwStats.Submitted)
	}
}
