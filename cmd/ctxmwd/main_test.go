package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"ctxres/internal/ctx"
	"ctxres/internal/daemon"
)

func TestProfiles(t *testing.T) {
	for _, app := range []string{"callforward", "rfid"} {
		checker, engine, err := profile(app)
		if err != nil {
			t.Fatalf("profile(%s): %v", app, err)
		}
		if len(checker.Constraints()) != 5 {
			t.Fatalf("%s constraints = %d", app, len(checker.Constraints()))
		}
		if len(engine.Situations()) != 3 {
			t.Fatalf("%s situations = %d", app, len(engine.Situations()))
		}
	}
	if _, _, err := profile("bogus"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestSetupServesAndResponds(t *testing.T) {
	srv, _, err := setup([]string{"-addr", "127.0.0.1:0", "-app", "rfid", "-strategy", "D-LAT"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	client, err := daemon.Dial(srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestSetupParallelismReachesChecker(t *testing.T) {
	srv, _, err := setup([]string{"-addr", "127.0.0.1:0", "-parallelism", "4"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	client, err := daemon.Dial(srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	t0 := time.Date(2008, 6, 17, 9, 0, 0, 0, time.UTC)
	for i := 1; i <= 2; i++ {
		c := ctx.NewLocation("peter", t0.Add(time.Duration(i)*time.Second),
			ctx.Point{X: float64(i)},
			ctx.WithSeq(uint64(i)), ctx.WithSource("s"))
		if _, err := client.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	mwStats, _, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if mwStats.Shards == 0 {
		t.Fatalf("stats = %+v, want shard dispatches from the parallel checker", mwStats)
	}
	// -parallelism -1 sizes the pool from GOMAXPROCS and must also serve.
	srv2, _, err := setup([]string{"-addr", "127.0.0.1:0", "-parallelism", "-1"})
	if err != nil {
		t.Fatal(err)
	}
	srv2.Shutdown()
}

func TestSetupErrors(t *testing.T) {
	if _, _, err := setup([]string{"-app", "bogus"}); err == nil {
		t.Fatal("bad app accepted")
	}
	if _, _, err := setup([]string{"-strategy", "bogus"}); err == nil {
		t.Fatal("bad strategy accepted")
	}
	if _, _, err := setup([]string{"-constraints", "/does/not/exist"}); err == nil {
		t.Fatal("missing constraints file accepted")
	}
	if _, _, err := setup([]string{"-addr", "256.256.256.256:1"}); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestSetupWithConstraintsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "set.ctx")
	content := `constraint velocity
forall a: location .
  forall b: location .
    (sameSubject(a, b) and streamAdjacent(a, b)) implies velocityBelow(a, b, 1.5)
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, _, err := setup([]string{"-addr", "127.0.0.1:0", "-constraints", path})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	client, err := daemon.Dial(srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	t0 := time.Date(2008, 6, 17, 9, 0, 0, 0, time.UTC)
	mk := func(id string, seq uint64, x float64) *ctx.Context {
		return ctx.NewLocation("peter", t0.Add(time.Duration(seq)*time.Second),
			ctx.Point{X: x},
			ctx.WithID(ctx.ID(id)), ctx.WithSeq(seq), ctx.WithSource("s"))
	}
	if _, err := client.Submit(mk("a", 1, 0)); err != nil {
		t.Fatal(err)
	}
	vios, err := client.Submit(mk("b", 2, 9))
	if err != nil {
		t.Fatal(err)
	}
	if len(vios) != 1 || vios[0].Constraint != "velocity" {
		t.Fatalf("violations = %+v, want the loaded constraint to fire", vios)
	}

	// The bad constraints-file branch.
	badPath := filepath.Join(dir, "bad.ctx")
	if err := os.WriteFile(badPath, []byte("constraint x\nnope(a)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := setup([]string{"-addr", "127.0.0.1:0", "-constraints", badPath}); err == nil {
		t.Fatal("bad constraints file accepted")
	}
}

func TestSetupDurabilityRecoversAcrossRestart(t *testing.T) {
	dataDir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-data-dir", dataDir,
		"-fsync", "always", "-snapshot-interval", "0", "-compact-interval", "0"}

	srv, shutdown, err := setup(args)
	if err != nil {
		t.Fatal(err)
	}
	client, err := daemon.Dial(srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2008, 6, 17, 9, 0, 0, 0, time.UTC)
	for i := 1; i <= 4; i++ {
		c := ctx.NewLocation("peter", t0.Add(time.Duration(i)*time.Second),
			ctx.Point{X: float64(i)},
			ctx.WithID(ctx.ID(string(rune('a'+i)))), ctx.WithSeq(uint64(i)), ctx.WithSource("s"))
		if _, err := client.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	before, beforePool, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	js, err := client.JournalStats()
	if err != nil {
		t.Fatal(err)
	}
	if js == nil || js.Records == 0 {
		t.Fatalf("journal stats = %+v, want records from -data-dir mode", js)
	}
	client.Close()
	srv.Shutdown()
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}

	// Restart against the same directory: state must come back.
	srv2, shutdown2, err := setup(args)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown()
	client2, err := daemon.Dial(srv2.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	after, afterPool, err := client2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if after.Submitted != before.Submitted {
		t.Fatalf("submitted = %d after restart, want %d", after.Submitted, before.Submitted)
	}
	if afterPool.Available != beforePool.Available {
		t.Fatalf("available contexts = %d after restart, want %d", afterPool.Available, beforePool.Available)
	}
	if err := shutdown2(); err != nil {
		t.Fatal(err)
	}
}
