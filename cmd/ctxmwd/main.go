// Command ctxmwd runs the context middleware as a network daemon: context
// sources and applications connect over TCP and speak the line-delimited
// JSON protocol of internal/daemon.
//
//	ctxmwd -addr 127.0.0.1:7654 -app callforward -strategy D-BAD
//
// -app selects the bundled constraint/situation sets (callforward, rfid);
// -strategy selects the resolution strategy (D-BAD, D-LAT, D-ALL, D-RAND,
// OPT-R); -parallelism switches consistency checking onto the parallel
// binding evaluator (as in ctxbench); -idle-timeout, -max-conns, and
// -drain-timeout tune the serving path. The daemon stops on
// SIGINT/SIGTERM after draining in-flight requests.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"

	"ctxres/internal/apps/callforward"
	"ctxres/internal/apps/rfidmon"
	"ctxres/internal/constraint"
	"ctxres/internal/daemon"
	"ctxres/internal/experiment"
	"ctxres/internal/middleware"
	"ctxres/internal/simspace"
	"ctxres/internal/situation"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ctxmwd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	srv, err := setup(args)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("ctxmwd: shutting down")
	srv.Shutdown()
	return nil
}

// setup parses flags, builds the middleware, and starts the daemon.
func setup(args []string) (*daemon.Server, error) {
	fs := flag.NewFlagSet("ctxmwd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:7654", "listen address")
		app      = fs.String("app", "callforward", "application profile: callforward or rfid")
		strategy = fs.String("strategy", "D-BAD", "resolution strategy: D-BAD, D-LAT, D-ALL, D-RAND, OPT-R")
		seed     = fs.Int64("seed", 1, "seed for randomized strategies")
		constrs  = fs.String("constraints", "", "load the constraint set from this file instead of the app profile")
		par      = fs.Int("parallelism", 0, "checker workers per consistency check "+
			"(<=1 serial, -1 = GOMAXPROCS)")
		idle     = fs.Duration("idle-timeout", daemon.DefaultIdleTimeout,
			"close connections idle longer than this (0 disables)")
		maxConns = fs.Int("max-conns", daemon.DefaultMaxConns,
			"concurrent connection cap (0 = unlimited)")
		drain = fs.Duration("drain-timeout", daemon.DefaultDrainTimeout,
			"how long shutdown waits for in-flight requests")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	checker, engine, err := profile(*app)
	if err != nil {
		return nil, err
	}
	if *constrs != "" {
		f, err := os.Open(*constrs)
		if err != nil {
			return nil, err
		}
		loaded, err := constraint.LoadCheckerFrom(f, nil)
		closeErr := f.Close()
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", *constrs, err)
		}
		if closeErr != nil {
			return nil, closeErr
		}
		checker = loaded
	}
	strat, err := experiment.NewStrategy(experiment.StrategyName(*strategy),
		rand.New(rand.NewSource(*seed)), nil)
	if err != nil {
		return nil, err
	}
	parallelism := *par
	if parallelism < 0 {
		parallelism = constraint.DefaultParallelism()
	}
	mw := middleware.New(checker, strat,
		middleware.WithSituations(engine),
		middleware.WithCheckerOptions(middleware.CheckerOptions{Parallelism: parallelism}))
	srv, err := daemon.Serve(*addr, mw, engine,
		daemon.WithIdleTimeout(*idle),
		daemon.WithMaxConns(*maxConns),
		daemon.WithDrainTimeout(*drain))
	if err != nil {
		return nil, err
	}
	fmt.Printf("ctxmwd: serving %s application with %s on %s (parallelism %d)\n",
		*app, strat.Name(), srv.Addr(), parallelism)
	return srv, nil
}

func profile(app string) (*constraint.Checker, *situation.Engine, error) {
	switch app {
	case "callforward":
		floor := simspace.OfficeFloor()
		return callforward.Checker(floor), callforward.Engine(floor), nil
	case "rfid":
		return rfidmon.Checker(), rfidmon.Engine(), nil
	default:
		return nil, nil, fmt.Errorf("unknown app profile %q (want callforward or rfid)", app)
	}
}
