// Command ctxmwd runs the context middleware as a network daemon: context
// sources and applications connect over TCP and speak the line-delimited
// JSON protocol of internal/daemon.
//
//	ctxmwd -addr 127.0.0.1:7654 -app callforward -strategy D-BAD
//
// -app selects the bundled constraint/situation sets (callforward, rfid);
// -strategy selects the resolution strategy (D-BAD, D-LAT, D-ALL, D-RAND,
// OPT-R); -parallelism switches consistency checking onto the parallel
// binding evaluator (as in ctxbench); -idle-timeout, -max-conns, and
// -drain-timeout tune the serving path.
//
// -data-dir enables durability: every state-changing operation is
// journaled to a write-ahead log in that directory, and on startup the
// daemon recovers the middleware state from it (snapshot plus replay; a
// torn final record from a crash is truncated). -fsync selects the sync
// policy (always, interval, never), -snapshot-interval the checkpoint
// cadence, and -compact-interval the pool-compaction cadence. The daemon
// stops on SIGINT/SIGTERM after draining in-flight requests, writing a
// final checkpoint when durability is on.
//
// -group-commit coalesces concurrent WAL commits into shared fsyncs:
// each acknowledgment is still released only after the fsync covering its
// record, so the durability contract is unchanged — only the fsync count
// drops. -commit-delay lets the commit leader linger for more appends and
// -commit-batch caps how many it waits for. Clients may negotiate the
// length-prefixed binary wire format (and batch submissions) per
// connection; the daemon serves line JSON and binary transparently.
//
// Overload resilience is opt-in: -max-pending caps the submit queue
// (excess submissions are shed with a typed "overloaded" code),
// -degrade-at/-resume-at bound the degraded mode that defers consistency
// checks under pressure and catches up once load drops, -check-timeout
// arms the check watchdog (a stuck or panicking check aborts with a
// typed "check-timeout" code instead of wedging the daemon), and
// -breaker-trip enables per-source circuit breakers (-breaker-window,
// -breaker-cooldown tune them) that quarantine sources producing too
// many bad contexts, answering them with "source-quarantined".
//
// Clustering (see internal/cluster and DESIGN.md): -follow runs the
// daemon as a replication follower tailing a leader's WAL over the
// protocol's replicate op into -data-dir; -promote-after makes it take
// over — recover the replicated log and start serving on -addr — once
// the leader has been unreachable that long. A leader needs no extra
// flags: whenever -data-dir is set the daemon serves replication streams
// to any follower that connects. -lease-ttl arms the split-brain guard: a
// leader that stops receiving follower acks for that long fences itself,
// shedding state-changing operations with the typed "stale-leader" code
// (reads keep working) until acks resume; pair it with a follower
// -promote-after strictly longer than the TTL so the deposed side sheds
// before the promoted side serves. Promotion bumps the journal's fencing
// epoch, so a resurrected old leader's replication stream is refused by
// followers that already saw the new epoch. -router runs a wire-compatible
// shard router gateway instead of a daemon: -shards lists the shard
// daemons, contexts partition across them by source over a consistent-hash
// ring, and constraints that cannot be proven source-local take a counted
// mirror path. A -shards element may be a replica set —
// "primary|replica,..." — in which case the router health-probes the
// members, follows the highest fencing epoch to the current leader, and
// re-points the shard on failover (counted in
// ctxres_router_failovers_total).
//
// -metrics-addr serves the operational HTTP endpoint: /metrics
// (Prometheus text exposition), /healthz (503 once the WAL has
// fail-stopped or maintenance fails), /statusz (JSON status: build info,
// uptime, configuration, pool and Σ sizes, counters), and /debug/pprof.
// The telemetry registry is always on — the stats op carries its
// snapshot either way — so -metrics-addr only controls the HTTP surface.
// -span-log appends one JSON line per pipeline operation (with per-stage
// timings) to a file. -trace-sample additionally roots a distributed
// trace for that fraction of operations: spans gain trace/span/parent
// IDs linking router fan-out, shard pipelines, WAL commit waits,
// replication shipping and applies, and subscription pushes into one
// tree (merge the per-node span logs with ctxspan), and every resolved
// constraint violation lands in a bounded provenance ring served by the
// protocol's provenance op and /statusz. Incoming requests that already
// carry a trace are always honored regardless of the sample rate.
// -version prints build information and exits.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"ctxres/internal/apps/callforward"
	"ctxres/internal/apps/rfidmon"
	"ctxres/internal/cluster"
	"ctxres/internal/constraint"
	"ctxres/internal/daemon"
	"ctxres/internal/experiment"
	"ctxres/internal/health"
	"ctxres/internal/middleware"
	"ctxres/internal/simspace"
	"ctxres/internal/situation"
	"ctxres/internal/telemetry"
	"ctxres/internal/wal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ctxmwd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	d, err := setup(args)
	if err != nil {
		return err
	}
	if d == nil {
		return nil // -version
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if d.autoPromote != nil {
		// Follower mode: wait for either a shutdown signal or the
		// promotion trigger; a promoted follower keeps serving as the new
		// leader until signaled.
		select {
		case <-sig:
		case <-d.autoPromote:
			if err := d.promote(); err != nil {
				_ = d.stop()
				return err
			}
			<-sig
		}
	} else {
		<-sig
	}
	fmt.Println("ctxmwd: shutting down")
	if d.srv != nil {
		d.srv.Shutdown()
	}
	if d.router != nil {
		d.router.Shutdown()
	}
	return d.stop()
}

// daemonProc is a running daemon: the protocol server, the optional ops
// endpoint, the process-wide telemetry registry, and the shutdown steps
// to run after the server has drained (final checkpoint, journal close,
// span-log flush, ops close).
type daemonProc struct {
	srv         *daemon.Server    // nil in router mode, and in follower mode until promotion
	router      *cluster.Router   // set in -router mode
	ops         *daemon.OpsServer // nil without -metrics-addr
	reg         *telemetry.Registry
	autoPromote <-chan struct{} // set in -follow mode with -promote-after
	promote     func() error    // promotes the follower and installs srv
	stop        func() error
}

// setup parses flags, builds the middleware (recovering from the WAL when
// -data-dir is set), and starts the daemon. It returns nil (and no error)
// when -version asked only for build information.
func setup(args []string) (*daemonProc, error) {
	fs := flag.NewFlagSet("ctxmwd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:7654", "listen address")
		app      = fs.String("app", "callforward", "application profile: callforward or rfid")
		strategy = fs.String("strategy", "D-BAD", "resolution strategy: D-BAD, D-LAT, D-ALL, D-RAND, OPT-R")
		seed     = fs.Int64("seed", 1, "seed for randomized strategies")
		constrs  = fs.String("constraints", "", "load the constraint set from this file instead of the app profile")
		par      = fs.Int("parallelism", 0, "checker workers per consistency check "+
			"(<=1 serial, -1 = GOMAXPROCS)")
		idle = fs.Duration("idle-timeout", daemon.DefaultIdleTimeout,
			"close connections idle longer than this (0 disables)")
		maxConns = fs.Int("max-conns", daemon.DefaultMaxConns,
			"concurrent connection cap (0 = unlimited)")
		drain = fs.Duration("drain-timeout", daemon.DefaultDrainTimeout,
			"how long shutdown waits for in-flight requests")
		dataDir = fs.String("data-dir", "",
			"write-ahead log directory; enables durability and crash recovery")
		fsyncMode = fs.String("fsync", "interval",
			"WAL sync policy: always, interval, or never")
		fsyncEvery = fs.Duration("fsync-interval", wal.DefaultFsyncEvery,
			"max time between WAL syncs under -fsync interval")
		groupCommit = fs.Bool("group-commit", false,
			"coalesce concurrent WAL commits into shared fsyncs (needs -data-dir; acks release only after the shared fsync)")
		commitDelay = fs.Duration("commit-delay", 0,
			"max time a group commit leader waits for more appends before fsyncing (0 = fsync immediately; needs -group-commit)")
		commitBatch = fs.Int("commit-batch", 0,
			"pending appends at which a delayed group commit fsyncs early (0 = default; needs -group-commit)")
		snapEvery = fs.Duration("snapshot-interval", time.Minute,
			"how often to checkpoint the WAL (0 disables; needs -data-dir)")
		compactEvery = fs.Duration("compact-interval", time.Minute,
			"how often to compact the context pool (0 disables)")
		metricsAddr = fs.String("metrics-addr", "",
			"serve /metrics, /healthz, /statusz, and /debug/pprof on this address (empty disables)")
		spanLog = fs.String("span-log", "",
			"append per-operation pipeline spans as JSON lines to this file (empty disables)")
		traceSample = fs.Float64("trace-sample", 0,
			"fraction of operations that root a distributed trace, in [0,1] "+
				"(needs -span-log; requests already carrying a trace are always honored)")
		maxPending = fs.Int("max-pending", 0,
			"submit queue cap; excess submissions are shed as overloaded (0 disables)")
		degradeAt = fs.Int("degrade-at", 0,
			"pending submissions at which consistency checks are deferred (0 disables degraded mode)")
		resumeAt = fs.Int("resume-at", 0,
			"pending submissions at or below which deferred checks catch up (0 = degrade-at - 1)")
		checkTimeout = fs.Duration("check-timeout", 0,
			"watchdog timeout per consistency check; stuck or panicking checks abort typed (0 disables)")
		breakerTrip = fs.Float64("breaker-trip", 0,
			"per-source bad ratio that trips the circuit breaker, in (0,1] (0 disables breakers)")
		breakerWindow = fs.Int("breaker-window", 0,
			"per-source sliding window of recent outcomes (0 = default)")
		breakerCooldown = fs.Duration("breaker-cooldown", 0,
			"logical time an open breaker waits before half-open probes (0 = default)")
		maxSubscribers = fs.Int("max-subscribers", daemon.DefaultMaxSubscribers,
			"situation subscriptions cap across all connections (-1 = unlimited)")
		subQueue = fs.Int("sub-queue", daemon.DefaultSubQueueLen,
			"per-subscriber event queue length; overflowing consumers are shed as subscriber-lagged")
		routerMode = fs.Bool("router", false,
			"run as a shard router gateway across -shards instead of a daemon")
		shardList = fs.String("shards", "",
			"comma-separated shard daemon addresses for -router")
		follow = fs.String("follow", "",
			"run as a replication follower of this leader address (needs -data-dir)")
		promoteAfter = fs.Duration("promote-after", 0,
			"follower promotes itself to leader after this long without a reachable leader (0 = never; needs -follow)")
		leaseTTL = fs.Duration("lease-ttl", 0,
			"leader self-fences (sheds writes as stale-leader) after this long without follower acks "+
				"(0 disables; needs -data-dir; must be below the followers' -promote-after)")
		version = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *version {
		fmt.Println(telemetry.VersionString("ctxmwd"))
		return nil, nil
	}
	if err := validateTunings(tunings{
		idle: *idle, drain: *drain, snapshot: *snapEvery, compact: *compactEvery,
		maxPending: *maxPending, degradeAt: *degradeAt, resumeAt: *resumeAt,
		checkTimeout: *checkTimeout, breakerTrip: *breakerTrip,
		breakerWindow: *breakerWindow, breakerCooldown: *breakerCooldown,
		groupCommit: *groupCommit, commitDelay: *commitDelay, commitBatch: *commitBatch,
		dataDir: *dataDir, maxSubscribers: *maxSubscribers, subQueue: *subQueue,
		router: *routerMode, shards: *shardList, follow: *follow, promoteAfter: *promoteAfter,
		leaseTTL: *leaseTTL, traceSample: *traceSample, spanLog: *spanLog,
	}); err != nil {
		return nil, err
	}

	checker, engine, err := profile(*app)
	if err != nil {
		return nil, err
	}
	if *constrs != "" {
		f, err := os.Open(*constrs)
		if err != nil {
			return nil, err
		}
		loaded, err := constraint.LoadCheckerFrom(f, nil)
		closeErr := f.Close()
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", *constrs, err)
		}
		if closeErr != nil {
			return nil, closeErr
		}
		checker = loaded
	}

	// The registry is always on: its per-observation cost is atomic adds,
	// and the stats op serves its snapshot even without -metrics-addr.
	reg := telemetry.NewRegistry()

	// The span log is shared by every role: shard daemons write pipeline
	// spans, the router writes routing spans, leaders and followers write
	// replication spans. Tracing uses it as the sink, so -trace-sample
	// requires it.
	var spans *telemetry.SpanWriter
	var spanFile *os.File
	if *spanLog != "" {
		spanFile, err = os.OpenFile(*spanLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("open span log: %w", err)
		}
		spans = telemetry.NewSpanWriter(spanFile)
		reg.CounterFunc("ctxres_spans_dropped_total",
			"Spans dropped because the span-log queue was full or its writer had failed.",
			func() float64 { return float64(spans.Drops()) })
	}
	closeSpans := func() error {
		if spans == nil {
			return nil
		}
		if err := spans.Flush(); err != nil {
			_ = spanFile.Close()
			return fmt.Errorf("flush span log: %w", err)
		}
		return spanFile.Close()
	}

	// Router mode needs only the checker (for the source-locality analysis
	// that decides which constraints scatter); no middleware runs here.
	if *routerMode {
		ropt := cluster.RouterOptions{
			Shards:    splitShards(*shardList),
			Checker:   checker,
			Timeout:   10 * time.Second,
			MaxConns:  *maxConns,
			Telemetry: reg,
			Logf: func(format string, args ...any) {
				fmt.Printf("ctxmwd: "+format+"\n", args...)
			},
		}
		if spans != nil {
			ropt.SpanSink = spans
			ropt.TraceSample = *traceSample
		}
		r, err := cluster.ServeRouter(*addr, ropt)
		if err != nil {
			_ = closeSpans()
			return nil, err
		}
		d := &daemonProc{router: r, reg: reg}
		start := time.Now()
		if *metricsAddr != "" {
			status := func() any {
				m := map[string]any{
					"build":         telemetry.BuildInfo(),
					"uptimeSeconds": time.Since(start).Seconds(),
					"addr":          r.Addr().String(),
					"app":           *app,
					"role":          "router",
					"router":        r.Stats(),
				}
				if spans != nil {
					m["traceSample"] = *traceSample
					m["spansDropped"] = spans.Drops()
				}
				return m
			}
			ops, err := daemon.ServeOps(*metricsAddr, daemon.OpsConfig{
				Registry: reg,
				Status:   status,
			})
			if err != nil {
				r.Shutdown()
				_ = closeSpans()
				return nil, err
			}
			d.ops = ops
			fmt.Printf("ctxmwd: metrics on %s\n", ops.Addr())
		}
		d.stop = func() error {
			if d.ops != nil {
				_ = d.ops.Close()
			}
			return closeSpans()
		}
		fmt.Printf("ctxmwd: routing %s application across %d shards on %s (%d spanning constraints)\n",
			*app, len(splitShards(*shardList)), r.Addr(), len(r.Spanning()))
		return d, nil
	}

	strat, err := experiment.NewStrategy(experiment.StrategyName(*strategy),
		rand.New(rand.NewSource(*seed)), nil)
	if err != nil {
		return nil, err
	}
	parallelism := *par
	if parallelism < 0 {
		parallelism = constraint.DefaultParallelism()
	}

	// The provenance ring is always on for a serving daemon: appends are
	// bounded and only happen on resolutions, and the provenance op
	// answers from it with or without tracing.
	prov := telemetry.NewProvenanceRing(0)
	mwOpts := []middleware.Option{
		middleware.WithSituations(engine),
		middleware.WithCheckerOptions(middleware.CheckerOptions{Parallelism: parallelism}),
		middleware.WithTelemetry(reg),
		middleware.WithProvenance(prov),
	}
	if spans != nil {
		mwOpts = append(mwOpts, middleware.WithSpanSink(spans))
	}
	if *maxPending > 0 || *degradeAt > 0 {
		mwOpts = append(mwOpts, middleware.WithAdmission(middleware.AdmissionOptions{
			MaxPending: *maxPending, DegradeAt: *degradeAt, ResumeAt: *resumeAt,
		}))
	}
	if *checkTimeout > 0 {
		mwOpts = append(mwOpts, middleware.WithWatchdog(middleware.WatchdogOptions{
			CheckTimeout: *checkTimeout,
		}))
	}
	if *breakerTrip > 0 {
		tracker := health.NewTracker(health.Config{
			TripRatio: *breakerTrip,
			Window:    *breakerWindow,
			Cooldown:  *breakerCooldown,
		})
		tracker.Register(reg)
		mwOpts = append(mwOpts, middleware.WithHealth(tracker))
	}
	build := func() *middleware.Middleware {
		return middleware.New(checker, strat, mwOpts...)
	}

	// baseServe is the option set shared by the leader path and a promoted
	// follower; the snapshot interval and replication source vary per path.
	baseServe := []daemon.Option{
		daemon.WithIdleTimeout(*idle),
		daemon.WithMaxConns(*maxConns),
		daemon.WithDrainTimeout(*drain),
		daemon.WithCompactInterval(*compactEvery),
		daemon.WithSubscriptions(daemon.SubscriptionOptions{
			MaxSubscribers: *maxSubscribers,
			QueueLen:       *subQueue,
		}),
		daemon.WithTelemetry(reg),
		daemon.WithProvenance(prov),
	}
	if spans != nil {
		baseServe = append(baseServe,
			daemon.WithTracing(spans, telemetry.NewSampler(*traceSample)))
	}

	// Follower mode: no middleware and no serving yet — tail the leader's
	// WAL into -data-dir. The promote closure builds the full leader stack
	// (recovery, journal with shipping, protocol server) on demand.
	if *follow != "" {
		policy, err := wal.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			_ = closeSpans()
			return nil, err
		}
		fopt := cluster.FollowerOptions{
			Leader:       *follow,
			Dir:          *dataDir,
			Fsync:        policy,
			PromoteAfter: *promoteAfter,
			Telemetry:    reg,
			Logf: func(format string, args ...any) {
				fmt.Printf("ctxmwd: "+format+"\n", args...)
			},
		}
		if spans != nil {
			fopt.SpanSink = spans
		}
		f, err := cluster.StartFollower(fopt)
		if err != nil {
			_ = closeSpans()
			return nil, err
		}
		d := &daemonProc{reg: reg}
		if *promoteAfter > 0 {
			d.autoPromote = f.AutoPromote()
		}
		var promotedShutdown func() error
		var promotedEpoch atomic.Uint64
		d.promote = func() error {
			mw, rep, err := f.Promote(build)
			if err != nil {
				return err
			}
			fmt.Printf("ctxmwd: recovered %s: snapshot seq %d, %d commands replayed, %d torn bytes truncated\n",
				*dataDir, rep.SnapshotSeq, rep.Commands, rep.TornBytes)
			var lease *cluster.Lease
			if *leaseTTL > 0 {
				lease = cluster.NewLease(cluster.LeaseOptions{TTL: *leaseTTL, Telemetry: reg})
			}
			shOpt := cluster.ShipperOptions{Dir: *dataDir, Telemetry: reg, Lease: lease}
			if spans != nil {
				shOpt.SpanSink = spans
			}
			sh := cluster.NewShipper(shOpt)
			j, err := wal.Open(wal.Options{
				Dir:          *dataDir,
				Fsync:        policy,
				FsyncEvery:   *fsyncEvery,
				GroupCommit:  *groupCommit,
				CommitDelay:  *commitDelay,
				CommitBatch:  *commitBatch,
				Observer:     middleware.NewWALObserver(reg),
				Ship:         sh.Tap,
				ShipSnapshot: sh.TapSnapshot,
			})
			if err != nil {
				return fmt.Errorf("promote: open wal %s: %w", *dataDir, err)
			}
			// Taking over is an epoch bump: records appended from here on
			// carry the new epoch, and the deposed leader's stream — still
			// stamped with the old one — is refused by anyone who saw ours.
			epoch, err := j.AdvanceEpoch()
			if err != nil {
				_ = j.Close()
				return fmt.Errorf("promote: advance epoch: %w", err)
			}
			sh.Attach(j)
			if err := mw.AttachJournal(j); err != nil {
				_ = j.Close()
				return fmt.Errorf("promote: %w", err)
			}
			srv, err := daemon.Serve(*addr, mw, engine, append(baseServe,
				daemon.WithSnapshotInterval(*snapEvery),
				daemon.WithReplicationSource(sh),
				daemon.WithFence(cluster.NewFence(j, lease)))...)
			if err != nil {
				_ = mw.CloseJournal()
				return fmt.Errorf("promote: %w", err)
			}
			d.srv = srv
			promotedEpoch.Store(epoch)
			promotedShutdown = func() error {
				if err := mw.Checkpoint(); err != nil {
					_ = mw.CloseJournal()
					return fmt.Errorf("final checkpoint: %w", err)
				}
				return mw.CloseJournal()
			}
			fmt.Printf("ctxmwd: promoted to leader at epoch %d, serving %s application with %s on %s\n",
				epoch, *app, strat.Name(), srv.Addr())
			return nil
		}
		start := time.Now()
		if *metricsAddr != "" {
			status := func() any {
				lagRecs, lagBytes := f.Lag()
				leaderLast, leaderDurable := f.LeaderPositions()
				m := map[string]any{
					"build":            telemetry.BuildInfo(),
					"uptimeSeconds":    time.Since(start).Seconds(),
					"app":              *app,
					"role":             "follower",
					"leader":           *follow,
					"dataDir":          *dataDir,
					"lastSeq":          f.LastSeq(),
					"lagRecords":       lagRecs,
					"lagBytes":         lagBytes,
					"leaderLastSeq":    leaderLast,
					"leaderDurableSeq": leaderDurable,
					"leaderEpoch":      f.LeaderEpoch(),
					"redials":          f.Resyncs(),
					"acksSent":         f.AcksSent(),
				}
				if epoch := promotedEpoch.Load(); epoch > 0 {
					m["role"] = "promoted-leader"
					m["epoch"] = epoch
				}
				if spans != nil {
					m["traceSample"] = *traceSample
					m["spansDropped"] = spans.Drops()
				}
				return m
			}
			ops, err := daemon.ServeOps(*metricsAddr, daemon.OpsConfig{
				Registry: reg,
				Status:   status,
			})
			if err != nil {
				_ = f.Stop()
				_ = closeSpans()
				return nil, err
			}
			d.ops = ops
			fmt.Printf("ctxmwd: metrics on %s\n", ops.Addr())
		}
		d.stop = func() error {
			if d.ops != nil {
				_ = d.ops.Close()
			}
			durErr := f.Stop() // no-op after promotion (Promote already stopped it)
			if promotedShutdown != nil {
				durErr = promotedShutdown()
			}
			if err := closeSpans(); err != nil && durErr == nil {
				durErr = err
			}
			return durErr
		}
		if *promoteAfter > 0 {
			fmt.Printf("ctxmwd: following %s into %s (auto-promote after %v)\n", *follow, *dataDir, *promoteAfter)
		} else {
			fmt.Printf("ctxmwd: following %s into %s\n", *follow, *dataDir)
		}
		return d, nil
	}

	var mw *middleware.Middleware
	var shipper *cluster.Shipper
	var journal *wal.Journal
	var lease *cluster.Lease
	durShutdown := func() error { return nil }
	snapInterval := time.Duration(0)
	serveOpts := baseServe
	if *dataDir != "" {
		policy, err := wal.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			_ = closeSpans()
			return nil, err
		}
		recovered, rep, err := middleware.Recover(*dataDir, build)
		if err != nil {
			_ = closeSpans()
			return nil, fmt.Errorf("recover %s: %w", *dataDir, err)
		}
		mw = recovered
		if rep.SnapshotPath != "" || rep.Commands > 0 {
			fmt.Printf("ctxmwd: recovered %s: snapshot seq %d, %d commands replayed, %d torn bytes truncated\n",
				*dataDir, rep.SnapshotSeq, rep.Commands, rep.TornBytes)
		}
		// Any daemon with a journal is a potential leader: the shipper taps
		// the append path and serves replication streams to followers. With
		// -lease-ttl the follower acks flowing back through the shipper also
		// renew the self-fencing lease.
		if *leaseTTL > 0 {
			lease = cluster.NewLease(cluster.LeaseOptions{TTL: *leaseTTL, Telemetry: reg})
		}
		shOpt := cluster.ShipperOptions{Dir: *dataDir, Telemetry: reg, Lease: lease}
		if spans != nil {
			shOpt.SpanSink = spans
		}
		sh := cluster.NewShipper(shOpt)
		shipper = sh
		j, err := wal.Open(wal.Options{
			Dir:          *dataDir,
			Fsync:        policy,
			FsyncEvery:   *fsyncEvery,
			GroupCommit:  *groupCommit,
			CommitDelay:  *commitDelay,
			CommitBatch:  *commitBatch,
			Observer:     middleware.NewWALObserver(reg),
			Ship:         sh.Tap,
			ShipSnapshot: sh.TapSnapshot,
		})
		if err != nil {
			_ = closeSpans()
			return nil, fmt.Errorf("open wal %s: %w", *dataDir, err)
		}
		sh.Attach(j)
		if err := mw.AttachJournal(j); err != nil {
			_ = j.Close()
			_ = closeSpans()
			return nil, err
		}
		journal = j
		snapInterval = *snapEvery
		serveOpts = append(serveOpts,
			daemon.WithReplicationSource(sh),
			daemon.WithFence(cluster.NewFence(j, lease)))
		durShutdown = func() error {
			if err := mw.Checkpoint(); err != nil {
				_ = mw.CloseJournal()
				return fmt.Errorf("final checkpoint: %w", err)
			}
			return mw.CloseJournal()
		}
	} else {
		mw = build()
	}

	srv, err := daemon.Serve(*addr, mw, engine,
		append(serveOpts, daemon.WithSnapshotInterval(snapInterval))...)
	if err != nil {
		if *dataDir != "" {
			_ = mw.CloseJournal()
		}
		_ = closeSpans()
		return nil, err
	}

	d := &daemonProc{srv: srv, reg: reg}
	start := time.Now()
	if *metricsAddr != "" {
		status := func() any {
			m := map[string]any{
				"build":         telemetry.BuildInfo(),
				"uptimeSeconds": time.Since(start).Seconds(),
				"addr":          srv.Addr().String(),
				"app":           *app,
				"strategy":      strat.Name(),
				"parallelism":   parallelism,
				"dataDir":       *dataDir,
				"fsync":         *fsyncMode,
				"poolContexts":  mw.Pool().Len(),
				"sigmaSize":     mw.SigmaSize(),
				"middleware":    mw.Stats(),
				"daemon":        srv.Stats(),
				"provenance":    map[string]any{"total": prov.Total()},
			}
			if shipper != nil {
				m["replication"] = shipper.Stats()
			}
			if journal != nil {
				m["epoch"] = journal.Epoch()
			}
			if lease != nil {
				m["lease"] = map[string]any{
					"valid":    lease.Valid(),
					"ttl":      lease.TTL().String(),
					"renewals": lease.Renewals(),
					"fences":   lease.Fences(),
				}
			}
			if spans != nil {
				m["traceSample"] = *traceSample
				m["spansDropped"] = spans.Drops()
			}
			return m
		}
		ops, err := daemon.ServeOps(*metricsAddr, daemon.OpsConfig{
			Registry: reg,
			Health:   srv.Health,
			Status:   status,
		})
		if err != nil {
			srv.Shutdown()
			_ = durShutdown()
			_ = closeSpans()
			return nil, err
		}
		d.ops = ops
		fmt.Printf("ctxmwd: metrics on %s\n", ops.Addr())
	}
	d.stop = func() error {
		if d.ops != nil {
			_ = d.ops.Close()
		}
		durErr := durShutdown()
		if err := closeSpans(); err != nil && durErr == nil {
			durErr = err
		}
		return durErr
	}

	b := telemetry.BuildInfo()
	fmt.Printf("ctxmwd: serving %s application with %s on %s (parallelism %d, %s %s/%s)\n",
		*app, strat.Name(), srv.Addr(), parallelism, b.GoVersion, b.OS, b.Arch)
	return d, nil
}

// tunings collects the numeric flags that validateTunings vets before the
// daemon starts.
type tunings struct {
	idle, drain, snapshot, compact  time.Duration
	maxPending, degradeAt, resumeAt int
	checkTimeout                    time.Duration
	breakerTrip                     float64
	breakerWindow                   int
	breakerCooldown                 time.Duration
	groupCommit                     bool
	commitDelay                     time.Duration
	commitBatch                     int
	dataDir                         string
	maxSubscribers, subQueue        int
	router                          bool
	shards                          string
	follow                          string
	promoteAfter                    time.Duration
	leaseTTL                        time.Duration
	traceSample                     float64
	spanLog                         string
}

// validateTunings rejects flag values that would silently misconfigure
// the daemon: a negative interval is always a typo, and a zero
// -drain-timeout would make every shutdown force-close in-flight
// requests. Zero stays valid where it is the documented "disabled"
// setting.
func validateTunings(t tunings) error {
	switch {
	case t.idle < 0:
		return fmt.Errorf("-idle-timeout must be >= 0 (0 disables), got %v", t.idle)
	case t.drain <= 0:
		return fmt.Errorf("-drain-timeout must be > 0, got %v", t.drain)
	case t.snapshot < 0:
		return fmt.Errorf("-snapshot-interval must be >= 0 (0 disables), got %v", t.snapshot)
	case t.compact < 0:
		return fmt.Errorf("-compact-interval must be >= 0 (0 disables), got %v", t.compact)
	case t.maxPending < 0:
		return fmt.Errorf("-max-pending must be >= 0 (0 disables), got %d", t.maxPending)
	case t.degradeAt < 0:
		return fmt.Errorf("-degrade-at must be >= 0 (0 disables), got %d", t.degradeAt)
	case t.resumeAt < 0:
		return fmt.Errorf("-resume-at must be >= 0, got %d", t.resumeAt)
	case t.resumeAt > 0 && t.degradeAt > 0 && t.resumeAt >= t.degradeAt:
		return fmt.Errorf("-resume-at (%d) must be below -degrade-at (%d)", t.resumeAt, t.degradeAt)
	case t.checkTimeout < 0:
		return fmt.Errorf("-check-timeout must be >= 0 (0 disables), got %v", t.checkTimeout)
	case t.breakerTrip < 0 || t.breakerTrip > 1:
		return fmt.Errorf("-breaker-trip must be in [0,1] (0 disables), got %g", t.breakerTrip)
	case t.breakerWindow < 0:
		return fmt.Errorf("-breaker-window must be >= 0 (0 = default), got %d", t.breakerWindow)
	case t.breakerCooldown < 0:
		return fmt.Errorf("-breaker-cooldown must be >= 0 (0 = default), got %v", t.breakerCooldown)
	case t.commitDelay < 0:
		return fmt.Errorf("-commit-delay must be >= 0 (0 fsyncs immediately), got %v", t.commitDelay)
	case t.commitBatch < 0:
		return fmt.Errorf("-commit-batch must be >= 0 (0 = default), got %d", t.commitBatch)
	case t.groupCommit && t.dataDir == "":
		return fmt.Errorf("-group-commit needs -data-dir (there is no journal to commit without one)")
	case !t.groupCommit && (t.commitDelay > 0 || t.commitBatch > 0):
		return fmt.Errorf("-commit-delay and -commit-batch need -group-commit")
	case t.maxSubscribers == 0 || t.maxSubscribers < -1:
		return fmt.Errorf("-max-subscribers must be > 0 or -1 (unlimited), got %d", t.maxSubscribers)
	case t.subQueue <= 0:
		return fmt.Errorf("-sub-queue must be > 0, got %d", t.subQueue)
	case t.router && t.shards == "":
		return fmt.Errorf("-router needs -shards (there is nothing to route to without them)")
	case !t.router && t.shards != "":
		return fmt.Errorf("-shards needs -router")
	case t.router && t.follow != "":
		return fmt.Errorf("-router and -follow are mutually exclusive roles")
	case t.router && t.dataDir != "":
		return fmt.Errorf("-router keeps no state; -data-dir belongs on the shard daemons")
	case t.follow != "" && t.dataDir == "":
		return fmt.Errorf("-follow needs -data-dir (the replicated log must land somewhere)")
	case t.promoteAfter < 0:
		return fmt.Errorf("-promote-after must be >= 0 (0 disables), got %v", t.promoteAfter)
	case t.promoteAfter > 0 && t.follow == "":
		return fmt.Errorf("-promote-after needs -follow")
	case t.leaseTTL < 0:
		return fmt.Errorf("-lease-ttl must be >= 0 (0 disables), got %v", t.leaseTTL)
	case t.leaseTTL > 0 && t.dataDir == "" && !t.router:
		return fmt.Errorf("-lease-ttl needs -data-dir (only a journaled leader can fence itself)")
	case t.router && t.leaseTTL > 0:
		return fmt.Errorf("-lease-ttl belongs on the shard daemons; the router holds no lease")
	case t.leaseTTL > 0 && t.promoteAfter > 0 && t.leaseTTL >= t.promoteAfter:
		return fmt.Errorf("-lease-ttl (%v) must be below -promote-after (%v) so the old leader sheds before the promoted one serves",
			t.leaseTTL, t.promoteAfter)
	case t.traceSample < 0 || t.traceSample > 1:
		return fmt.Errorf("-trace-sample must be in [0,1], got %g", t.traceSample)
	case t.traceSample > 0 && t.spanLog == "":
		return fmt.Errorf("-trace-sample needs -span-log (traced spans have nowhere to go without it)")
	}
	if t.router {
		// Replica-set syntax ("primary|replica,...") is vetted here so a
		// typo fails at startup, not at the first probe.
		if _, err := cluster.ParseShardSpecs(splitShards(t.shards)); err != nil {
			return fmt.Errorf("-shards: %w", err)
		}
	}
	return nil
}

// splitShards parses the -shards list, dropping empty elements.
func splitShards(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func profile(app string) (*constraint.Checker, *situation.Engine, error) {
	switch app {
	case "callforward":
		floor := simspace.OfficeFloor()
		return callforward.Checker(floor), callforward.Engine(floor), nil
	case "rfid":
		return rfidmon.Checker(), rfidmon.Engine(), nil
	default:
		return nil, nil, fmt.Errorf("unknown app profile %q (want callforward or rfid)", app)
	}
}
