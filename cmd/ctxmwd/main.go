// Command ctxmwd runs the context middleware as a network daemon: context
// sources and applications connect over TCP and speak the line-delimited
// JSON protocol of internal/daemon.
//
//	ctxmwd -addr 127.0.0.1:7654 -app callforward -strategy D-BAD
//
// -app selects the bundled constraint/situation sets (callforward, rfid);
// -strategy selects the resolution strategy (D-BAD, D-LAT, D-ALL, D-RAND,
// OPT-R). The daemon stops on SIGINT/SIGTERM after draining connections.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"

	"ctxres/internal/apps/callforward"
	"ctxres/internal/apps/rfidmon"
	"ctxres/internal/constraint"
	"ctxres/internal/daemon"
	"ctxres/internal/experiment"
	"ctxres/internal/middleware"
	"ctxres/internal/simspace"
	"ctxres/internal/situation"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ctxmwd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	srv, err := setup(args)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("ctxmwd: shutting down")
	srv.Shutdown()
	return nil
}

// setup parses flags, builds the middleware, and starts the daemon.
func setup(args []string) (*daemon.Server, error) {
	fs := flag.NewFlagSet("ctxmwd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:7654", "listen address")
		app      = fs.String("app", "callforward", "application profile: callforward or rfid")
		strategy = fs.String("strategy", "D-BAD", "resolution strategy: D-BAD, D-LAT, D-ALL, D-RAND, OPT-R")
		seed     = fs.Int64("seed", 1, "seed for randomized strategies")
		constrs  = fs.String("constraints", "", "load the constraint set from this file instead of the app profile")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	checker, engine, err := profile(*app)
	if err != nil {
		return nil, err
	}
	if *constrs != "" {
		f, err := os.Open(*constrs)
		if err != nil {
			return nil, err
		}
		loaded, err := constraint.LoadCheckerFrom(f, nil)
		closeErr := f.Close()
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", *constrs, err)
		}
		if closeErr != nil {
			return nil, closeErr
		}
		checker = loaded
	}
	strat, err := experiment.NewStrategy(experiment.StrategyName(*strategy),
		rand.New(rand.NewSource(*seed)), nil)
	if err != nil {
		return nil, err
	}
	mw := middleware.New(checker, strat, middleware.WithSituations(engine))
	srv, err := daemon.Serve(*addr, mw, engine)
	if err != nil {
		return nil, err
	}
	fmt.Printf("ctxmwd: serving %s application with %s on %s\n",
		*app, strat.Name(), srv.Addr())
	return srv, nil
}

func profile(app string) (*constraint.Checker, *situation.Engine, error) {
	switch app {
	case "callforward":
		floor := simspace.OfficeFloor()
		return callforward.Checker(floor), callforward.Engine(floor), nil
	case "rfid":
		return rfidmon.Checker(), rfidmon.Engine(), nil
	default:
		return nil, nil, fmt.Errorf("unknown app profile %q (want callforward or rfid)", app)
	}
}
