// Command ctxmwd runs the context middleware as a network daemon: context
// sources and applications connect over TCP and speak the line-delimited
// JSON protocol of internal/daemon.
//
//	ctxmwd -addr 127.0.0.1:7654 -app callforward -strategy D-BAD
//
// -app selects the bundled constraint/situation sets (callforward, rfid);
// -strategy selects the resolution strategy (D-BAD, D-LAT, D-ALL, D-RAND,
// OPT-R); -parallelism switches consistency checking onto the parallel
// binding evaluator (as in ctxbench); -idle-timeout, -max-conns, and
// -drain-timeout tune the serving path.
//
// -data-dir enables durability: every state-changing operation is
// journaled to a write-ahead log in that directory, and on startup the
// daemon recovers the middleware state from it (snapshot plus replay; a
// torn final record from a crash is truncated). -fsync selects the sync
// policy (always, interval, never), -snapshot-interval the checkpoint
// cadence, and -compact-interval the pool-compaction cadence. The daemon
// stops on SIGINT/SIGTERM after draining in-flight requests, writing a
// final checkpoint when durability is on.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ctxres/internal/apps/callforward"
	"ctxres/internal/apps/rfidmon"
	"ctxres/internal/constraint"
	"ctxres/internal/daemon"
	"ctxres/internal/experiment"
	"ctxres/internal/middleware"
	"ctxres/internal/simspace"
	"ctxres/internal/situation"
	"ctxres/internal/wal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ctxmwd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	srv, shutdown, err := setup(args)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("ctxmwd: shutting down")
	srv.Shutdown()
	return shutdown()
}

// setup parses flags, builds the middleware (recovering from the WAL when
// -data-dir is set), and starts the daemon. The returned function runs the
// durability shutdown steps (final checkpoint, journal close) after the
// server has drained.
func setup(args []string) (*daemon.Server, func() error, error) {
	fs := flag.NewFlagSet("ctxmwd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:7654", "listen address")
		app      = fs.String("app", "callforward", "application profile: callforward or rfid")
		strategy = fs.String("strategy", "D-BAD", "resolution strategy: D-BAD, D-LAT, D-ALL, D-RAND, OPT-R")
		seed     = fs.Int64("seed", 1, "seed for randomized strategies")
		constrs  = fs.String("constraints", "", "load the constraint set from this file instead of the app profile")
		par      = fs.Int("parallelism", 0, "checker workers per consistency check "+
			"(<=1 serial, -1 = GOMAXPROCS)")
		idle = fs.Duration("idle-timeout", daemon.DefaultIdleTimeout,
			"close connections idle longer than this (0 disables)")
		maxConns = fs.Int("max-conns", daemon.DefaultMaxConns,
			"concurrent connection cap (0 = unlimited)")
		drain = fs.Duration("drain-timeout", daemon.DefaultDrainTimeout,
			"how long shutdown waits for in-flight requests")
		dataDir = fs.String("data-dir", "",
			"write-ahead log directory; enables durability and crash recovery")
		fsyncMode = fs.String("fsync", "interval",
			"WAL sync policy: always, interval, or never")
		fsyncEvery = fs.Duration("fsync-interval", wal.DefaultFsyncEvery,
			"max time between WAL syncs under -fsync interval")
		snapEvery = fs.Duration("snapshot-interval", time.Minute,
			"how often to checkpoint the WAL (0 disables; needs -data-dir)")
		compactEvery = fs.Duration("compact-interval", time.Minute,
			"how often to compact the context pool (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, nil, err
	}

	checker, engine, err := profile(*app)
	if err != nil {
		return nil, nil, err
	}
	if *constrs != "" {
		f, err := os.Open(*constrs)
		if err != nil {
			return nil, nil, err
		}
		loaded, err := constraint.LoadCheckerFrom(f, nil)
		closeErr := f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("load %s: %w", *constrs, err)
		}
		if closeErr != nil {
			return nil, nil, closeErr
		}
		checker = loaded
	}
	strat, err := experiment.NewStrategy(experiment.StrategyName(*strategy),
		rand.New(rand.NewSource(*seed)), nil)
	if err != nil {
		return nil, nil, err
	}
	parallelism := *par
	if parallelism < 0 {
		parallelism = constraint.DefaultParallelism()
	}
	build := func() *middleware.Middleware {
		return middleware.New(checker, strat,
			middleware.WithSituations(engine),
			middleware.WithCheckerOptions(middleware.CheckerOptions{Parallelism: parallelism}))
	}

	var mw *middleware.Middleware
	shutdown := func() error { return nil }
	snapInterval := time.Duration(0)
	if *dataDir != "" {
		policy, err := wal.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			return nil, nil, err
		}
		recovered, rep, err := middleware.Recover(*dataDir, build)
		if err != nil {
			return nil, nil, fmt.Errorf("recover %s: %w", *dataDir, err)
		}
		mw = recovered
		if rep.SnapshotPath != "" || rep.Commands > 0 {
			fmt.Printf("ctxmwd: recovered %s: snapshot seq %d, %d commands replayed, %d torn bytes truncated\n",
				*dataDir, rep.SnapshotSeq, rep.Commands, rep.TornBytes)
		}
		j, err := wal.Open(wal.Options{Dir: *dataDir, Fsync: policy, FsyncEvery: *fsyncEvery})
		if err != nil {
			return nil, nil, fmt.Errorf("open wal %s: %w", *dataDir, err)
		}
		if err := mw.AttachJournal(j); err != nil {
			_ = j.Close()
			return nil, nil, err
		}
		snapInterval = *snapEvery
		shutdown = func() error {
			if err := mw.Checkpoint(); err != nil {
				_ = mw.CloseJournal()
				return fmt.Errorf("final checkpoint: %w", err)
			}
			return mw.CloseJournal()
		}
	} else {
		mw = build()
	}

	srv, err := daemon.Serve(*addr, mw, engine,
		daemon.WithIdleTimeout(*idle),
		daemon.WithMaxConns(*maxConns),
		daemon.WithDrainTimeout(*drain),
		daemon.WithSnapshotInterval(snapInterval),
		daemon.WithCompactInterval(*compactEvery))
	if err != nil {
		if *dataDir != "" {
			_ = mw.CloseJournal()
		}
		return nil, nil, err
	}
	fmt.Printf("ctxmwd: serving %s application with %s on %s (parallelism %d)\n",
		*app, strat.Name(), srv.Addr(), parallelism)
	return srv, shutdown, nil
}

func profile(app string) (*constraint.Checker, *situation.Engine, error) {
	switch app {
	case "callforward":
		floor := simspace.OfficeFloor()
		return callforward.Checker(floor), callforward.Engine(floor), nil
	case "rfid":
		return rfidmon.Checker(), rfidmon.Engine(), nil
	default:
		return nil, nil, fmt.Errorf("unknown app profile %q (want callforward or rfid)", app)
	}
}
