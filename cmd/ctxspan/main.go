// Command ctxspan reconstructs distributed traces from per-node span
// logs:
//
//	ctxspan -list router.spans shard0.spans follower.spans
//	ctxspan -trace 4bf92f3577b34da6a3ce929d0e0e4736 *.spans
//	ctxspan *.spans
//
// Each input file is a span JSONL log written by a ctxmwd process (the
// -spans flag). ctxspan merges them, groups spans by trace ID, links
// them into a tree by span/parent IDs, and renders the tree with
// per-hop timings, pipeline stage breakdowns, and the resolution
// provenance carried on resolve spans. Without -trace it renders the
// trace with the most spans; -list summarizes every trace instead.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"ctxres/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ctxspan:", err)
		os.Exit(1)
	}
}

// node is one span plus where it came from and who it caused.
type node struct {
	span     telemetry.Span
	source   string // basename of the log file the span was read from
	children []*node
}

func run(args []string, out io.Writer) error {
	if len(args) == 1 {
		switch args[0] {
		case "version", "-version", "--version":
			fmt.Fprintln(out, telemetry.VersionString("ctxspan"))
			return nil
		}
	}
	fs := flag.NewFlagSet("ctxspan", flag.ContinueOnError)
	var (
		traceID = fs.String("trace", "", "trace ID to render (default: the trace with the most spans)")
		list    = fs.Bool("list", false, "list every trace with span counts instead of rendering one")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: ctxspan [-list | -trace ID] span-log.jsonl...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no span logs given (usage: ctxspan [-list | -trace ID] span-log.jsonl...)")
	}

	traces, err := load(fs.Args())
	if err != nil {
		return err
	}
	if len(traces) == 0 {
		return fmt.Errorf("no traced spans found (spans without a trace_id are skipped)")
	}
	if *list {
		listTraces(out, traces)
		return nil
	}
	id := *traceID
	if id == "" {
		id = biggest(traces)
	}
	nodes, ok := traces[id]
	if !ok {
		return fmt.Errorf("trace %s not found in the given logs (use -list to see trace IDs)", id)
	}
	render(out, id, nodes)
	return nil
}

// load reads every file and groups its traced spans by trace ID.
func load(paths []string) (map[string][]*node, error) {
	traces := make(map[string][]*node)
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		source := filepath.Base(path)
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var sp telemetry.Span
			if err := json.Unmarshal([]byte(line), &sp); err != nil {
				_ = f.Close()
				return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
			}
			if sp.TraceID == "" {
				continue // untraced local span; not part of any trace
			}
			traces[sp.TraceID] = append(traces[sp.TraceID], &node{span: sp, source: source})
		}
		if err := sc.Err(); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	return traces, nil
}

func biggest(traces map[string][]*node) string {
	best, bestN := "", -1
	for id, ns := range traces {
		if len(ns) > bestN || (len(ns) == bestN && id < best) {
			best, bestN = id, len(ns)
		}
	}
	return best
}

func listTraces(out io.Writer, traces map[string][]*node) {
	ids := make([]string, 0, len(traces))
	for id := range traces {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := traces[ids[i]], traces[ids[j]]
		if len(a) != len(b) {
			return len(a) > len(b)
		}
		return ids[i] < ids[j]
	})
	for _, id := range ids {
		ns := traces[id]
		sources := map[string]bool{}
		for _, n := range ns {
			sources[n.source] = true
		}
		names := make([]string, 0, len(sources))
		for s := range sources {
			names = append(names, s)
		}
		sort.Strings(names)
		fmt.Fprintf(out, "%s  %3d spans  %6s  [%s]\n",
			id, len(ns), duration(total(ns)), strings.Join(names, " "))
	}
}

// total is the wall-clock extent of a trace: earliest start to latest end.
func total(ns []*node) float64 {
	if len(ns) == 0 {
		return 0
	}
	first := ns[0].span.Start
	latest := spanEnd(ns[0])
	for _, n := range ns[1:] {
		if n.span.Start.Before(first) {
			first = n.span.Start
		}
		if end := spanEnd(n); end.After(latest) {
			latest = end
		}
	}
	return latest.Sub(first).Seconds()
}

// link builds the forest for one trace: children attach to the node
// carrying their parent span ID; spans whose parent is missing from the
// logs (the parent node's log was not given, or the hop was not
// spanned) become roots. Children sort by start time, roots likewise.
func link(ns []*node) []*node {
	byID := make(map[string]*node, len(ns))
	for _, n := range ns {
		if n.span.SpanID != "" {
			byID[n.span.SpanID] = n
		}
	}
	var roots []*node
	for _, n := range ns {
		if p, ok := byID[n.span.ParentID]; ok && n.span.ParentID != "" && p != n {
			p.children = append(p.children, n)
		} else {
			roots = append(roots, n)
		}
	}
	order := func(a, b *node) bool {
		if !a.span.Start.Equal(b.span.Start) {
			return a.span.Start.Before(b.span.Start)
		}
		return a.span.SpanID < b.span.SpanID
	}
	sort.Slice(roots, func(i, j int) bool { return order(roots[i], roots[j]) })
	for _, n := range ns {
		c := n.children
		sort.Slice(c, func(i, j int) bool { return order(c[i], c[j]) })
	}
	return roots
}

func render(out io.Writer, id string, ns []*node) {
	fmt.Fprintf(out, "trace %s  (%d spans, %s)\n", id, len(ns), duration(total(ns)))
	roots := link(ns)
	for i, r := range roots {
		renderNode(out, r, "", i == len(roots)-1)
	}
}

func renderNode(out io.Writer, n *node, prefix string, last bool) {
	branch, childPrefix := "├─ ", prefix+"│  "
	if last {
		branch, childPrefix = "└─ ", prefix+"   "
	}
	fmt.Fprintf(out, "%s%s%s\n", prefix, branch, describe(n))
	// Stage timings render as pseudo-children ahead of real child spans.
	for i, st := range n.span.Stages {
		lastLeaf := i == len(n.span.Stages)-1 && n.span.Resolution == nil && len(n.children) == 0
		leaf := "├· "
		if lastLeaf {
			leaf = "└· "
		}
		fmt.Fprintf(out, "%s%s%-14s %8s\n", childPrefix, leaf, st.Stage, duration(st.Seconds))
	}
	if ev := n.span.Resolution; ev != nil {
		leaf := "├· "
		if len(n.children) == 0 {
			leaf = "└· "
		}
		fmt.Fprintf(out, "%s%sresolved %s via %s: discarded %s\n",
			childPrefix, leaf, ev.Constraint, ev.Strategy, joinIDs(ev.Discarded))
	}
	for i, c := range n.children {
		renderNode(out, c, childPrefix, i == len(n.children)-1)
	}
}

func describe(n *node) string {
	sp := &n.span
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s", sp.Op)
	if sp.ID != "" {
		fmt.Fprintf(&b, " %s", sp.ID)
	}
	fmt.Fprintf(&b, "  %8s", duration(sp.Seconds))
	if sp.Outcome != "" {
		fmt.Fprintf(&b, "  %s", sp.Outcome)
	}
	fmt.Fprintf(&b, "  (%s)", n.source)
	return b.String()
}

func joinIDs(ids []string) string {
	if len(ids) == 0 {
		return "nothing"
	}
	return strings.Join(ids, ", ")
}

func duration(sec float64) string {
	switch {
	case sec <= 0:
		return "0s"
	case sec < 1e-3:
		return fmt.Sprintf("%.0fµs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.2fms", sec*1e3)
	default:
		return fmt.Sprintf("%.3fs", sec)
	}
}

func spanEnd(n *node) time.Time {
	return n.span.Start.Add(time.Duration(n.span.Seconds * float64(time.Second)))
}
