package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ctxres/internal/telemetry"
)

// writeSpans writes spans as a JSONL log, one file per node.
func writeSpans(t *testing.T, dir, name string, spans ...*telemetry.Span) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sw := telemetry.NewSpanWriter(f)
	for _, sp := range spans {
		sw.RecordSpan(sp)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRenderCrossNodeTree(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	trace := strings.Repeat("ab", 16)

	router := writeSpans(t, dir, "router.spans",
		&telemetry.Span{Op: "route_submit", ID: "ctx-1", Outcome: "delivered",
			TraceID: trace, SpanID: "r000000000000001", Start: base, Seconds: 0.010},
		&telemetry.Span{Op: "shard_submit", ID: "shard-0", Outcome: "ok",
			TraceID: trace, SpanID: "r000000000000002", ParentID: "r000000000000001",
			Start: base.Add(1 * time.Millisecond), Seconds: 0.008},
	)
	shard := writeSpans(t, dir, "shard0.spans",
		&telemetry.Span{Op: "submit", ID: "ctx-1", Outcome: "accepted",
			TraceID: trace, SpanID: "s000000000000001", ParentID: "r000000000000002",
			Start: base.Add(2 * time.Millisecond), Seconds: 0.005,
			Stages: []telemetry.StageTiming{
				{Stage: telemetry.StageCheck, Seconds: 0.001},
				{Stage: telemetry.StageResolve, Seconds: 0.002},
			},
			Resolution: &telemetry.ResolutionEvent{
				Constraint: "same-location", Strategy: "drop-latest",
				Discarded: []string{"ctx-0"}, Clock: base, TraceID: trace,
			}},
	)
	follower := writeSpans(t, dir, "follower.spans",
		&telemetry.Span{Op: "repl_apply", ID: "seq 4", Outcome: "applied",
			TraceID: trace, SpanID: "f000000000000001", ParentID: "s000000000000001",
			Start: base.Add(4 * time.Millisecond), Seconds: 0.001},
		// An untraced local span must not appear in any trace.
		&telemetry.Span{Op: "catchup", Start: base, Seconds: 0.2},
	)

	var out strings.Builder
	if err := run([]string{router, shard, follower}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"trace " + trace, "4 spans",
		"route_submit", "shard_submit", "submit", "repl_apply",
		"(router.spans)", "(shard0.spans)", "(follower.spans)",
		"check", "resolve",
		"resolved same-location via drop-latest: discarded ctx-0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "catchup") {
		t.Fatalf("untraced span leaked into render:\n%s", text)
	}

	// The tree must nest: repl_apply under submit under shard_submit
	// under route_submit — deeper rows carry longer prefixes.
	depth := func(op string) int {
		for _, line := range strings.Split(text, "\n") {
			if i := strings.Index(line, "─ "); i >= 0 && strings.HasPrefix(line[i+len("─ "):], op) {
				return i
			}
		}
		t.Fatalf("no row for %s:\n%s", op, text)
		return -1
	}
	if !(depth("route_submit") < depth("shard_submit") &&
		depth("shard_submit") < depth("submit ") &&
		depth("submit ") < depth("repl_apply")) {
		t.Fatalf("tree does not nest router→shard→follower:\n%s", text)
	}
}

func TestListAndTraceSelection(t *testing.T) {
	dir := t.TempDir()
	base := time.Now()
	big := strings.Repeat("aa", 16)
	small := strings.Repeat("bb", 16)
	log := writeSpans(t, dir, "node.spans",
		&telemetry.Span{Op: "submit", TraceID: big, SpanID: "0000000000000001", Start: base, Seconds: 0.001},
		&telemetry.Span{Op: "use", TraceID: big, SpanID: "0000000000000002", Start: base, Seconds: 0.001},
		&telemetry.Span{Op: "submit", TraceID: small, SpanID: "0000000000000003", Start: base, Seconds: 0.001},
	)

	var out strings.Builder
	if err := run([]string{"-list", log}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, big+"    2 spans") || !strings.Contains(text, small+"    1 spans") {
		t.Fatalf("list output:\n%s", text)
	}
	// The larger trace must list first.
	if strings.Index(text, big) > strings.Index(text, small) {
		t.Fatalf("traces not sorted by span count:\n%s", text)
	}

	// Default selection picks the biggest trace.
	out.Reset()
	if err := run([]string{log}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace "+big) {
		t.Fatalf("default selection:\n%s", out.String())
	}

	// Explicit -trace picks the named one.
	out.Reset()
	if err := run([]string{"-trace", small, log}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace "+small) {
		t.Fatalf("-trace selection:\n%s", out.String())
	}
}

func TestOrphanSpansBecomeRoots(t *testing.T) {
	dir := t.TempDir()
	trace := strings.Repeat("cd", 16)
	log := writeSpans(t, dir, "only.spans",
		// Parent lives in a log we were not given; the span still renders.
		&telemetry.Span{Op: "repl_apply", TraceID: trace,
			SpanID: "0000000000000009", ParentID: "feedfacefeedface",
			Start: time.Now(), Seconds: 0.001},
	)
	var out strings.Builder
	if err := run([]string{log}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "repl_apply") {
		t.Fatalf("orphan span dropped:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("no logs accepted")
	}
	if err := run([]string{"/does/not/exist.spans"}, &out); err == nil {
		t.Fatal("missing log accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.spans")
	if err := os.WriteFile(bad, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &out); err == nil || !strings.Contains(err.Error(), "bad.spans:1") {
		t.Fatalf("malformed line error = %v", err)
	}
	empty := filepath.Join(dir, "empty.spans")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{empty}, &out); err == nil {
		t.Fatal("log with no traced spans accepted")
	}
	if err := run([]string{"-trace", "beef", empty}, &out); err == nil {
		t.Fatal("unknown trace accepted")
	}
}

func TestVersion(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ctxspan") {
		t.Fatalf("version output: %s", out.String())
	}
}

func TestDurationFormatting(t *testing.T) {
	cases := []struct {
		sec  float64
		want string
	}{{0, "0s"}, {0.000002, "2µs"}, {0.0005, "500µs"}, {0.0042, "4.20ms"}, {1.5, "1.500s"}}
	for _, c := range cases {
		if got := duration(c.sec); got != c.want {
			t.Errorf("duration(%v) = %q, want %q", c.sec, got, c.want)
		}
	}
}
