// Command ctxtrace generates, inspects and replays context-stream traces:
//
//	ctxtrace gen -app callforward -rate 0.2 -seed 7 -out trace.jsonl
//	ctxtrace info -in trace.jsonl
//	ctxtrace replay -in trace.jsonl -addr 127.0.0.1:7654 -window 2
//
// gen captures one experiment workload (with ground truth) as JSON lines;
// info summarizes a trace; replay feeds it to a running ctxmwd daemon,
// using each context after the configured window, and prints the daemon's
// resolution statistics.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"ctxres/internal/ctx"
	"ctxres/internal/daemon"
	"ctxres/internal/experiment"
	"ctxres/internal/telemetry"
	"ctxres/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ctxtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: ctxtrace gen|info|replay [flags]")
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:], out)
	case "info":
		return runInfo(args[1:], out)
	case "replay":
		return runReplay(args[1:], out)
	case "version", "-version", "--version":
		fmt.Fprintln(out, telemetry.VersionString("ctxtrace"))
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q (want gen, info, replay or version)", args[0])
	}
}

func runGen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ctxtrace gen", flag.ContinueOnError)
	var (
		app  = fs.String("app", "callforward", "workload: callforward or rfid")
		rate = fs.Float64("rate", 0.2, "controlled error rate")
		seed = fs.Int64("seed", 1, "workload seed")
		path = fs.String("out", "trace.jsonl", "output file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := appSpec(*app)
	if err != nil {
		return err
	}
	w, err := spec.NewWorkload(*rate, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	f, err := os.Create(*path)
	if err != nil {
		return err
	}
	tw := trace.NewWriter(f)
	if err := tw.WriteWorkload(w.Steps); err != nil {
		_ = f.Close()
		return err
	}
	if err := tw.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d steps, %d contexts (%d corrupted) to %s\n",
		len(w.Steps), w.Contexts(), w.CorruptedContexts(), *path)
	return nil
}

func runInfo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ctxtrace info", flag.ContinueOnError)
	path := fs.String("in", "trace.jsonl", "trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	steps, err := readTrace(*path)
	if err != nil {
		return err
	}
	total, corrupted := 0, 0
	kinds := map[ctx.Kind]int{}
	var first, last time.Time
	for _, step := range steps {
		for _, c := range step {
			total++
			if c.Truth.Corrupted {
				corrupted++
			}
			kinds[c.Kind]++
			if first.IsZero() || c.Timestamp.Before(first) {
				first = c.Timestamp
			}
			if c.Timestamp.After(last) {
				last = c.Timestamp
			}
		}
	}
	fmt.Fprintf(out, "%s: %d steps, %d contexts (%d corrupted, %.1f%%)\n",
		*path, len(steps), total, corrupted, pct(corrupted, total))
	for k, n := range kinds {
		fmt.Fprintf(out, "  kind %-12s %d\n", k, n)
	}
	if !first.IsZero() {
		fmt.Fprintf(out, "  spans %s → %s (%s)\n",
			first.Format(time.RFC3339), last.Format(time.RFC3339), last.Sub(first))
	}
	return nil
}

func runReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ctxtrace replay", flag.ContinueOnError)
	var (
		path   = fs.String("in", "trace.jsonl", "trace file")
		addr   = fs.String("addr", "127.0.0.1:7654", "daemon address")
		window = fs.Int("window", 2, "steps before a context is used")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *window < 0 {
		return fmt.Errorf("window must be non-negative")
	}
	steps, err := readTrace(*path)
	if err != nil {
		return err
	}
	client, err := daemon.Dial(*addr, 10*time.Second)
	if err != nil {
		return err
	}
	defer client.Close()

	detected, delivered, rejected := 0, 0, 0
	use := func(step []*ctx.Context) {
		for _, c := range step {
			if _, err := client.Use(c.ID); err != nil {
				rejected++
			} else {
				delivered++
			}
		}
	}
	for i, step := range steps {
		for _, c := range step {
			vios, err := client.Submit(c)
			if err != nil {
				return fmt.Errorf("submit step %d: %w", i, err)
			}
			detected += len(vios)
		}
		if j := i - *window; j >= 0 {
			use(steps[j])
		}
	}
	for j := len(steps) - *window; j < len(steps); j++ {
		if j >= 0 {
			use(steps[j])
		}
	}
	mwStats, poolStats, err := client.Stats()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replayed %d steps: %d inconsistencies detected, "+
		"%d delivered, %d rejected\n", len(steps), detected, delivered, rejected)
	fmt.Fprintf(out, "daemon totals: %+v\npool: %+v\n", mwStats, poolStats)
	return nil
}

func readTrace(path string) ([][]*ctx.Context, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

func appSpec(app string) (experiment.AppSpec, error) {
	switch app {
	case "callforward":
		return experiment.CallForwardingApp(), nil
	case "rfid":
		return experiment.RFIDApp(), nil
	default:
		return experiment.AppSpec{}, fmt.Errorf("unknown app %q", app)
	}
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
