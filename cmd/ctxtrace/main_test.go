package main

import (
	"path/filepath"
	"strings"
	"testing"

	"ctxres/internal/apps/callforward"
	"ctxres/internal/daemon"
	"ctxres/internal/middleware"
	"ctxres/internal/simspace"
	"ctxres/internal/strategy"
)

func TestGenInfoReplayPipeline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")

	// gen
	var out strings.Builder
	err := run([]string{"gen", "-app", "callforward", "-rate", "0.2",
		"-seed", "7", "-out", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 200 steps") {
		t.Fatalf("gen output: %s", out.String())
	}

	// info
	out.Reset()
	if err := run([]string{"info", "-in", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"200 steps", "kind location", "corrupted"} {
		if !strings.Contains(text, want) {
			t.Fatalf("info output missing %q:\n%s", want, text)
		}
	}

	// replay against a live daemon
	floor := simspace.OfficeFloor()
	mw := middleware.New(callforward.Checker(floor), strategy.NewDropBad())
	srv, err := daemon.Serve("127.0.0.1:0", mw, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	out.Reset()
	err = run([]string{"replay", "-in", path, "-addr", srv.Addr().String(),
		"-window", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text = out.String()
	if !strings.Contains(text, "replayed 200 steps") {
		t.Fatalf("replay output:\n%s", text)
	}
	stats := mw.Stats()
	if stats.Submitted != 200 {
		t.Fatalf("daemon submitted = %d", stats.Submitted)
	}
	if stats.Detected == 0 || stats.Discarded == 0 {
		t.Fatalf("daemon resolved nothing: %+v", stats)
	}
	if stats.Delivered+stats.Rejected != 200 {
		t.Fatalf("uses do not add up: %+v", stats)
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("no subcommand accepted")
	}
	if err := run([]string{"dance"}, &out); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"gen", "-app", "bogus"}, &out); err == nil {
		t.Fatal("unknown app accepted")
	}
	if err := run([]string{"info", "-in", "/does/not/exist"}, &out); err == nil {
		t.Fatal("missing trace accepted")
	}
	if err := run([]string{"replay", "-in", "/does/not/exist"}, &out); err == nil {
		t.Fatal("missing trace accepted")
	}
	if err := run([]string{"replay", "-window", "-1"}, &out); err == nil {
		t.Fatal("negative window accepted")
	}
}
