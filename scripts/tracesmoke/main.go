// Command tracesmoke is the smoke test's tracing leg: it submits a
// conflicting pair of location contexts through the router under one
// client-rooted trace, checks the violation actually fired, and then
// reads the resolution back out of the shards' provenance rings tagged
// with the same trace ID. The trace ID is the only thing printed on
// stdout, so the smoke script can feed it straight to ctxspan.
package main

import (
	"fmt"
	"os"
	"time"

	"ctxres/internal/ctx"
	"ctxres/internal/daemon"
	"ctxres/internal/telemetry"
)

func main() {
	if len(os.Args) < 3 {
		fmt.Fprintln(os.Stderr, "usage: tracesmoke <router-addr> <shard-addr> [shard-addr ...]")
		os.Exit(2)
	}
	router, shards := os.Args[1], os.Args[2:]

	client, err := daemon.DialOptions(router, daemon.ClientOptions{
		Timeout: 5 * time.Second,
		Trace:   true,
	})
	if err != nil {
		fail("dial %s: %v", router, err)
	}
	defer client.Close()

	// One client-rooted trace for both submissions. The second context
	// teleports 8 m in half a second, violating the callforward profile's
	// velocity and concurrent-agreement constraints on whichever shard
	// owns the source (and on every mirror).
	tr := telemetry.TraceContext{TraceID: telemetry.NewTraceID()}
	now := time.Now().UTC()
	pair := []*ctx.Context{
		ctx.NewLocation("peter", now, ctx.Point{X: 1, Y: 1},
			ctx.WithID("ts-1"), ctx.WithSeq(1), ctx.WithSource("ts-src-a")),
		ctx.NewLocation("peter", now.Add(500*time.Millisecond), ctx.Point{X: 9, Y: 1},
			ctx.WithID("ts-2"), ctx.WithSeq(2), ctx.WithSource("ts-src-a")),
	}
	var violations int
	for _, c := range pair {
		vios, err := client.SubmitTrace(c, 0, tr)
		if err != nil {
			fail("submit %s: %v", c.ID, err)
		}
		violations += len(vios)
	}
	if violations == 0 {
		fail("conflicting pair provoked no violations")
	}

	// The resolution must be queryable after the fact, attributed to the
	// submission's trace, from at least one shard's provenance ring.
	found := false
	for _, addr := range shards {
		sc, err := daemon.Dial(addr, 5*time.Second)
		if err != nil {
			fail("dial shard %s: %v", addr, err)
		}
		events, err := sc.Provenance(50)
		sc.Close()
		if err != nil {
			fail("provenance %s: %v", addr, err)
		}
		for _, ev := range events {
			if ev.TraceID == tr.TraceID {
				found = true
				fmt.Fprintf(os.Stderr, "tracesmoke: %s resolved %s via %s (discarded %v)\n",
					addr, ev.Constraint, ev.Strategy, ev.Discarded)
			}
		}
	}
	if !found {
		fail("no provenance event carries trace %s", tr.TraceID)
	}
	fmt.Println(tr.TraceID)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracesmoke: "+format+"\n", args...)
	os.Exit(1)
}
