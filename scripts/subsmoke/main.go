// Command subsmoke is the smoke test's subscriber leg: it subscribes to a
// live ctxmwd with an inline formula, submits a matching context, and
// exits zero once the activation is pushed back over the same connection.
package main

import (
	"fmt"
	"os"
	"time"

	"ctxres/internal/ctx"
	"ctxres/internal/daemon"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: subsmoke <daemon-addr>")
		os.Exit(2)
	}
	client, err := daemon.Dial(os.Args[1], 5*time.Second)
	if err != nil {
		fail("dial %s: %v", os.Args[1], err)
	}
	defer client.Close()

	events := make(chan daemon.WireEvent, 16)
	err = client.SubscribeFormula("smoke",
		`exists a: location . subjectIs(a, "smoke-subject")`,
		func(_ string, ev daemon.WireEvent) { events <- ev })
	if err != nil {
		fail("subscribe: %v", err)
	}

	c := ctx.NewLocation("smoke-subject", time.Now().UTC(), ctx.Point{},
		ctx.WithSeq(1), ctx.WithSource("subsmoke"))
	if _, err := client.Submit(c); err != nil {
		fail("submit: %v", err)
	}

	select {
	case ev := <-events:
		if ev.Type != "activated" {
			fail("first push = %s %s, want an activation", ev.Situation, ev.Type)
		}
		fmt.Printf("subsmoke: pushed %s %s\n", ev.Situation, ev.Type)
	case <-time.After(5 * time.Second):
		fail("no activation pushed within 5s")
	}
	if err := client.Unsubscribe("smoke"); err != nil {
		fail("unsubscribe: %v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "subsmoke: "+format+"\n", args...)
	os.Exit(1)
}
