// Command promcheck validates Prometheus text exposition read from
// stdin and exits nonzero on any format violation. The CI smoke job
// pipes a live /metrics scrape through it.
package main

import (
	"fmt"
	"io"
	"os"

	"ctxres/internal/telemetry"
)

func main() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
	if err := telemetry.ValidateExposition(data); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck: malformed exposition:", err)
		os.Exit(1)
	}
	fmt.Printf("promcheck: ok (%d bytes)\n", len(data))
}
