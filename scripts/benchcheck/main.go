// Command benchcheck validates a BENCH_*.json perf report written by
// `ctxbench -perf` and exits nonzero when the schema or the numbers are
// off. The CI bench-smoke job runs the load generator for a few seconds
// in both wire formats and pipes the report through this check, so a
// refactor that silently breaks the perf harness (empty sections, zero
// throughput, missing latency fields) fails the build rather than
// producing a plausible-looking artifact.
//
// Usage: benchcheck [-full] report.json
//
// By default only the loadgen section is required (the smoke run skips
// the slow phases). -full additionally requires the figure, telemetry
// overhead, tracing overhead, daemon histogram, and push-latency
// sections, and enforces two acceptance floors: the batched/group-commit
// configuration must reach at least 2x the single-submit json baseline at
// equal durability, and distributed tracing at its production 1% sampling
// rate must stay under 5% submit-path overhead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type report struct {
	Generated string           `json:"generated"`
	Build     json.RawMessage  `json:"build"`
	Figures   []map[string]any `json:"figures"`
	Telemetry []map[string]any `json:"telemetryOverhead"`
	Tracing   []struct {
		App              string  `json:"app"`
		SampleRate       float64 `json:"sampleRate"`
		BaselineNsPerCtx float64 `json:"baselineNsPerCtx"`
		TracedNsPerCtx   float64 `json:"tracedNsPerCtx"`
		OverheadPct      float64 `json:"overheadPct"`
	} `json:"tracingOverhead"`
	Daemon    *struct {
		Histograms map[string]json.RawMessage `json:"histograms"`
	} `json:"daemon"`
	Push *struct {
		Toggles       int     `json:"toggles"`
		EndToEndP50Ms float64 `json:"endToEndP50Millis"`
		EndToEndP99Ms float64 `json:"endToEndP99Millis"`
		ServerPush    struct {
			Count uint64 `json:"count"`
		} `json:"serverPushSeconds"`
	} `json:"push"`
	Loadgen *struct {
		Method  string `json:"method"`
		Results []struct {
			Config            string  `json:"config"`
			WireFormat        string  `json:"wireFormat"`
			BatchSize         int     `json:"batchSize"`
			Fsync             string  `json:"fsync"`
			CapacityOpsPerSec float64 `json:"capacityOpsPerSec"`
			Points            []struct {
				TargetOpsPerSec   float64 `json:"targetOpsPerSec"`
				AchievedOpsPerSec float64 `json:"achievedOpsPerSec"`
				LatencyP50Millis  float64 `json:"latencyP50Millis"`
				LatencyP99Millis  float64 `json:"latencyP99Millis"`
			} `json:"points"`
		} `json:"results"`
		GroupBatchSpeedup float64 `json:"groupBatchSpeedup"`
		Baseline          string  `json:"baseline"`
		Candidate         string  `json:"candidate"`
	} `json:"loadgen"`
}

func main() {
	full := flag.Bool("full", false, "require every report section and the 2x speedup floor")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-full] report.json")
		os.Exit(2)
	}
	if err := check(flag.Arg(0), *full); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %s ok\n", flag.Arg(0))
}

func check(path string, full bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Generated == "" {
		return fmt.Errorf("missing generated timestamp")
	}
	if len(rep.Build) == 0 {
		return fmt.Errorf("missing build info")
	}
	if rep.Loadgen == nil {
		return fmt.Errorf("missing loadgen section")
	}
	lg := rep.Loadgen
	if lg.Method == "" {
		return fmt.Errorf("loadgen: missing method description")
	}
	if len(lg.Results) == 0 {
		return fmt.Errorf("loadgen: no results")
	}
	formats := map[string]bool{}
	for _, r := range lg.Results {
		if r.Config == "" {
			return fmt.Errorf("loadgen: unnamed result")
		}
		if r.Fsync != "always" {
			return fmt.Errorf("loadgen %s: fsync = %q, want always (equal-durability comparison)", r.Config, r.Fsync)
		}
		if r.CapacityOpsPerSec <= 0 {
			return fmt.Errorf("loadgen %s: capacity %.2f, want > 0", r.Config, r.CapacityOpsPerSec)
		}
		if len(r.Points) == 0 {
			return fmt.Errorf("loadgen %s: no open-loop points", r.Config)
		}
		for i, p := range r.Points {
			if p.TargetOpsPerSec <= 0 || p.AchievedOpsPerSec <= 0 {
				return fmt.Errorf("loadgen %s point %d: nonpositive rate", r.Config, i)
			}
			if p.LatencyP50Millis <= 0 || p.LatencyP99Millis < p.LatencyP50Millis {
				return fmt.Errorf("loadgen %s point %d: implausible latencies p50=%.3f p99=%.3f",
					r.Config, i, p.LatencyP50Millis, p.LatencyP99Millis)
			}
		}
		formats[r.WireFormat] = true
	}
	if full {
		for _, want := range []string{"json", "binary"} {
			if !formats[want] {
				return fmt.Errorf("loadgen: no %s-format result", want)
			}
		}
		if len(rep.Figures) == 0 {
			return fmt.Errorf("missing figures section")
		}
		if len(rep.Telemetry) == 0 {
			return fmt.Errorf("missing telemetry overhead section")
		}
		if len(rep.Tracing) == 0 {
			return fmt.Errorf("missing tracing overhead section")
		}
		// The tracing acceptance floor: at the production 1% sampling
		// rate, distributed tracing must stay under 5% submit-path
		// overhead.
		for _, tr := range rep.Tracing {
			if tr.BaselineNsPerCtx <= 0 || tr.TracedNsPerCtx <= 0 {
				return fmt.Errorf("tracing %s: nonpositive per-context times", tr.App)
			}
			if tr.SampleRate <= 0 || tr.SampleRate > 1 {
				return fmt.Errorf("tracing %s: sample rate %.4f outside (0,1]", tr.App, tr.SampleRate)
			}
			if tr.OverheadPct >= 5 {
				return fmt.Errorf("tracing %s: %.1f%% submit-path overhead at %.0f%% sampling, want < 5%%",
					tr.App, tr.OverheadPct, tr.SampleRate*100)
			}
		}
		if rep.Daemon == nil || len(rep.Daemon.Histograms) == 0 {
			return fmt.Errorf("missing daemon histograms")
		}
		if rep.Push == nil {
			return fmt.Errorf("missing push latency section")
		}
		if rep.Push.Toggles <= 0 || rep.Push.EndToEndP50Ms <= 0 ||
			rep.Push.EndToEndP99Ms < rep.Push.EndToEndP50Ms {
			return fmt.Errorf("push: implausible round trip: %+v", *rep.Push)
		}
		if rep.Push.ServerPush.Count == 0 {
			return fmt.Errorf("push: server push histogram empty")
		}
		if lg.GroupBatchSpeedup < 2 {
			return fmt.Errorf("loadgen: %s vs %s speedup %.2fx, want >= 2x",
				lg.Candidate, lg.Baseline, lg.GroupBatchSpeedup)
		}
	}
	return nil
}
