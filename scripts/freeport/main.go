// Command freeport prints a free 127.0.0.1 TCP address. The smoke test
// uses it to pick a follower's serving address up front, so a router can
// list the follower as a replica-set member before it is ever promoted
// (a follower only starts serving once it takes over).
package main

import (
	"fmt"
	"net"
	"os"
)

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "freeport:", err)
		os.Exit(1)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	fmt.Println(addr)
}
