#!/usr/bin/env bash
# Smoke test: boot a real ctxmwd with an ops endpoint, scrape /metrics
# and /healthz over HTTP, fail on malformed Prometheus exposition output
# (validated by scripts/promcheck), then run the clustering legs: a
# 2-shard router round-trip, a leader/follower kill-and-promote, a
# self-fenced stale leader shedding writes, and a failover-aware router
# re-pointing a replica set at its promoted member.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
log="$workdir/ctxmwd.log"
pids=()
cleanup() {
    [[ -n "${pid:-}" ]] && kill "$pid" 2>/dev/null || true
    for p in ${pids[@]+"${pids[@]}"}; do kill "$p" 2>/dev/null || true; done
    for p in ${tpids[@]+"${tpids[@]}"}; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true # let the daemons release the workdir before rm
    rm -rf "$workdir"
}
trap cleanup EXIT

# wait_line LOG SED_PATTERN: poll LOG until SED_PATTERN extracts a value
# (a serving address, usually) and echo it; fail after ~15s.
wait_line() {
    local log=$1 pat=$2 got="" i
    for i in $(seq 1 150); do
        got=$(sed -n "$pat" "$log" | head -1)
        [[ -n "$got" ]] && { echo "$got"; return 0; }
        sleep 0.1
    done
    echo "smoke: timed out waiting on $log for: $pat" >&2
    cat "$log" >&2
    return 1
}

go build -o "$workdir/ctxmwd" ./cmd/ctxmwd
"$workdir/ctxmwd" -addr 127.0.0.1:0 -metrics-addr 127.0.0.1:0 \
    -data-dir "$workdir/wal" -fsync always >"$log" 2>&1 &
pid=$!

maddr=""
for _ in $(seq 1 100); do
    maddr=$(sed -n 's/^ctxmwd: metrics on //p' "$log" | head -1)
    [[ -n "$maddr" ]] && break
    kill -0 "$pid" 2>/dev/null || { echo "smoke: ctxmwd died:"; cat "$log"; exit 1; }
    sleep 0.1
done
if [[ -z "$maddr" ]]; then
    echo "smoke: ctxmwd never logged its metrics address:"
    cat "$log"
    exit 1
fi
echo "smoke: ops endpoint on $maddr"

health=$(curl -fsS "http://$maddr/healthz")
if [[ "$health" != ok* ]]; then
    echo "smoke: /healthz said: $health"
    exit 1
fi

curl -fsS "http://$maddr/metrics" >"$workdir/metrics.txt"
go run ./scripts/promcheck <"$workdir/metrics.txt"
for metric in ctxres_submits_total ctxres_uptime_seconds ctxres_requests_total; do
    if ! grep -q "^$metric " "$workdir/metrics.txt"; then
        echo "smoke: /metrics missing $metric"
        exit 1
    fi
done

curl -fsS "http://$maddr/statusz" | grep -q goVersion || {
    echo "smoke: /statusz missing build info"
    exit 1
}

# Subscriber leg: subscribe over the wire, submit a matching context, and
# require one pushed activation within 5s.
daddr=$(sed -n 's/^ctxmwd: serving .* on \([0-9.:]*\) .*/\1/p' "$log" | head -1)
if [[ -z "$daddr" ]]; then
    echo "smoke: ctxmwd never logged its serving address:"
    cat "$log"
    exit 1
fi
go run ./scripts/subsmoke "$daddr"

kill -TERM "$pid"
wait "$pid" || { echo "smoke: ctxmwd exited nonzero on SIGTERM:"; cat "$log"; exit 1; }
pid=""

serving_pat='s/^ctxmwd: serving .* on \([0-9.:]*\) .*/\1/p'

# Cluster leg 1: two shard daemons behind a -router gateway. Submit two
# sources through the router and read the subject back through it.
"$workdir/ctxmwd" -addr 127.0.0.1:0 >"$workdir/shard1.log" 2>&1 &
pids+=($!)
"$workdir/ctxmwd" -addr 127.0.0.1:0 >"$workdir/shard2.log" 2>&1 &
pids+=($!)
s1=$(wait_line "$workdir/shard1.log" "$serving_pat")
s2=$(wait_line "$workdir/shard2.log" "$serving_pat")
"$workdir/ctxmwd" -addr 127.0.0.1:0 -router -shards "$s1,$s2" >"$workdir/router.log" 2>&1 &
pids+=($!)
raddr=$(wait_line "$workdir/router.log" 's/^ctxmwd: routing .* on \([0-9.:]*\) .*/\1/p')
echo "smoke: router on $raddr (shards $s1 $s2)"
go run ./scripts/clustersmoke seed "$raddr"
go run ./scripts/clustersmoke verify "$raddr"

# Cluster leg 2: journaled leader, replicating follower with
# auto-promote. Seed the leader, wait until the follower's replication
# lag drains, kill the leader, and read back from the promoted follower
# through the client's fallback dialing (dead leader listed first).
"$workdir/ctxmwd" -addr 127.0.0.1:0 -data-dir "$workdir/leader-wal" -fsync always \
    >"$workdir/leader.log" 2>&1 &
lpid=$!
pids+=($lpid)
laddr=$(wait_line "$workdir/leader.log" "$serving_pat")
"$workdir/ctxmwd" -addr 127.0.0.1:0 -metrics-addr 127.0.0.1:0 \
    -follow "$laddr" -data-dir "$workdir/follower-wal" -promote-after 1s \
    >"$workdir/follower.log" 2>&1 &
pids+=($!)
wait_line "$workdir/follower.log" 's/^ctxmwd: following \([0-9.:]*\) .*/\1/p' >/dev/null
fops=$(wait_line "$workdir/follower.log" 's/^ctxmwd: metrics on //p')
go run ./scripts/clustersmoke seed "$laddr"
caught_up=""
for _ in $(seq 1 100); do
    status=$(curl -fsS "http://$fops/statusz" || true)
    if [[ "$status" == *'"lagRecords": 0'* && "$status" != *'"lastSeq": 0'* ]]; then
        caught_up=yes
        break
    fi
    sleep 0.1
done
[[ -n "$caught_up" ]] || { echo "smoke: follower never caught up"; cat "$workdir/follower.log"; exit 1; }
kill -TERM "$lpid"
wait "$lpid" || { echo "smoke: leader exited nonzero on SIGTERM:"; cat "$workdir/leader.log"; exit 1; }
promoted_pat='s/^ctxmwd: promoted to leader at epoch [0-9]*, serving .* on \([0-9.:]*\)$/\1/p'
faddr=$(wait_line "$workdir/follower.log" "$promoted_pat")
echo "smoke: follower promoted on $faddr"
go run ./scripts/clustersmoke verify "$laddr" "$faddr"

# Fencing leg: resurrect the killed leader from its own WAL with a short
# -lease-ttl and no followers. Nothing acks, so one TTL after boot the
# lease lapses and the daemon must shed writes with the typed
# stale-leader code while still answering reads.
"$workdir/ctxmwd" -addr 127.0.0.1:0 -data-dir "$workdir/leader-wal" \
    -lease-ttl 300ms >"$workdir/oldleader.log" 2>&1 &
pids+=($!)
oaddr=$(wait_line "$workdir/oldleader.log" "$serving_pat")
sleep 0.5 # burn the one-TTL boot grace
go run ./scripts/clustersmoke fenced "$oaddr"
echo "smoke: resurrected leader on $oaddr self-fenced"

# Cluster leg 3: failover-aware routing. A replica-set shard
# ("primary|replica") behind the router, with the replica a real
# replicating follower whose serving port is reserved up front. Kill the
# primary: the follower auto-promotes, the router's probe loop re-points
# the shard at it, reads through the router succeed again, and the
# router's metrics show the failover.
fport=$(go run ./scripts/freeport)
"$workdir/ctxmwd" -addr 127.0.0.1:0 -data-dir "$workdir/rleader-wal" \
    >"$workdir/rleader.log" 2>&1 &
rlpid=$!
pids+=($rlpid)
rladdr=$(wait_line "$workdir/rleader.log" "$serving_pat")
"$workdir/ctxmwd" -addr "$fport" -metrics-addr 127.0.0.1:0 \
    -follow "$rladdr" -data-dir "$workdir/rfollower-wal" -promote-after 1s \
    >"$workdir/rfollower.log" 2>&1 &
pids+=($!)
rfops=$(wait_line "$workdir/rfollower.log" 's/^ctxmwd: metrics on //p')
"$workdir/ctxmwd" -addr 127.0.0.1:0 -metrics-addr 127.0.0.1:0 \
    -router -shards "$rladdr|$fport" >"$workdir/frouter.log" 2>&1 &
pids+=($!)
fraddr=$(wait_line "$workdir/frouter.log" 's/^ctxmwd: routing .* on \([0-9.:]*\) .*/\1/p')
frops=$(wait_line "$workdir/frouter.log" 's/^ctxmwd: metrics on //p')
echo "smoke: failover router on $fraddr (replica set $rladdr|$fport)"
go run ./scripts/clustersmoke seed "$fraddr"
caught_up=""
for _ in $(seq 1 100); do
    status=$(curl -fsS "http://$rfops/statusz" || true)
    if [[ "$status" == *'"lagRecords": 0'* && "$status" != *'"lastSeq": 0'* ]]; then
        caught_up=yes
        break
    fi
    sleep 0.1
done
[[ -n "$caught_up" ]] || { echo "smoke: replica never caught up"; cat "$workdir/rfollower.log"; exit 1; }
kill -TERM "$rlpid"
wait "$rlpid" || { echo "smoke: primary exited nonzero on SIGTERM:"; cat "$workdir/rleader.log"; exit 1; }
wait_line "$workdir/rfollower.log" "$promoted_pat" >/dev/null
routed=""
for _ in $(seq 1 100); do
    if go run ./scripts/clustersmoke verify "$fraddr" >/dev/null 2>&1; then
        routed=yes
        break
    fi
    sleep 0.1
done
[[ -n "$routed" ]] || {
    echo "smoke: router never re-pointed the replica set at the promoted member"
    cat "$workdir/frouter.log"
    exit 1
}
go run ./scripts/clustersmoke verify "$fraddr"
# The verify above can succeed through the shard client's own dial
# fallback before the probe loop's first counted re-point, so poll the
# failover counter rather than reading it once.
failovers=""
for _ in $(seq 1 150); do
    curl -fsS "http://$frops/metrics" >"$workdir/router-metrics.txt" || true
    failovers=$(sed -n 's/^ctxres_router_failovers_total //p' "$workdir/router-metrics.txt")
    [[ -n "$failovers" && "$failovers" != 0 ]] && break
    failovers=""
    sleep 0.1
done
if [[ -z "$failovers" ]]; then
    echo "smoke: ctxres_router_failovers_total never incremented"
    cat "$workdir/router-metrics.txt"
    exit 1
fi
echo "smoke: router failed over ($failovers recorded)"

# Tracing leg: a traced conflicting submission through a mirroring router
# backed by a journaled shard with a replicating follower must come back
# out of ctxspan as one tree spanning all four processes — gateway fan-out,
# shard pipeline with its resolution, and the replication hop.
"$workdir/ctxmwd" -addr 127.0.0.1:0 -data-dir "$workdir/tshard1-wal" \
    -span-log "$workdir/shard1.spans" >"$workdir/tshard1.log" 2>&1 &
tpids=($!)
"$workdir/ctxmwd" -addr 127.0.0.1:0 -span-log "$workdir/shard2.spans" \
    >"$workdir/tshard2.log" 2>&1 &
tpids+=($!)
ts1=$(wait_line "$workdir/tshard1.log" "$serving_pat")
ts2=$(wait_line "$workdir/tshard2.log" "$serving_pat")
"$workdir/ctxmwd" -addr 127.0.0.1:0 -router -shards "$ts1,$ts2" \
    -span-log "$workdir/router.spans" -trace-sample 1.0 >"$workdir/trouter.log" 2>&1 &
tpids+=($!)
traddr=$(wait_line "$workdir/trouter.log" 's/^ctxmwd: routing .* on \([0-9.:]*\) .*/\1/p')
"$workdir/ctxmwd" -addr 127.0.0.1:0 -metrics-addr 127.0.0.1:0 \
    -follow "$ts1" -data-dir "$workdir/tfollower-wal" \
    -span-log "$workdir/follower.spans" >"$workdir/tfollower.log" 2>&1 &
tpids+=($!)
tfops=$(wait_line "$workdir/tfollower.log" 's/^ctxmwd: metrics on //p')
echo "smoke: traced router on $traddr (shards $ts1 $ts2)"

tid=$(go run ./scripts/tracesmoke "$traddr" "$ts1" "$ts2")
echo "smoke: traced submission $tid"

caught_up=""
for _ in $(seq 1 100); do
    status=$(curl -fsS "http://$tfops/statusz" || true)
    if [[ "$status" == *'"lagRecords": 0'* && "$status" != *'"lastSeq": 0'* ]]; then
        caught_up=yes
        break
    fi
    sleep 0.1
done
[[ -n "$caught_up" ]] || { echo "smoke: traced follower never caught up"; cat "$workdir/tfollower.log"; exit 1; }

# Span logs flush on graceful shutdown; stop the whole topology before
# reading them.
for p in "${tpids[@]}"; do kill -TERM "$p" 2>/dev/null || true; done
for p in "${tpids[@]}"; do wait "$p" || true; done

go run ./cmd/ctxspan -trace "$tid" \
    "$workdir/router.spans" "$workdir/shard1.spans" "$workdir/shard2.spans" \
    "$workdir/follower.spans" >"$workdir/trace.txt"
for op in route_submit shard_submit mirror_submit submit repl_ship repl_apply; do
    grep -q "$op" "$workdir/trace.txt" || {
        echo "smoke: trace tree missing $op:"
        cat "$workdir/trace.txt"
        exit 1
    }
done
grep -q "resolved cf-" "$workdir/trace.txt" || {
    echo "smoke: trace tree missing the resolution provenance line:"
    cat "$workdir/trace.txt"
    exit 1
}
echo "smoke: trace tree spans router, shards, and follower"

echo "smoke: ok"
