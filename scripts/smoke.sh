#!/usr/bin/env bash
# Observability smoke test: boot a real ctxmwd with an ops endpoint,
# scrape /metrics and /healthz over HTTP, and fail on malformed
# Prometheus exposition output (validated by scripts/promcheck).
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
log="$workdir/ctxmwd.log"
cleanup() {
    [[ -n "${pid:-}" ]] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/ctxmwd" ./cmd/ctxmwd
"$workdir/ctxmwd" -addr 127.0.0.1:0 -metrics-addr 127.0.0.1:0 \
    -data-dir "$workdir/wal" -fsync always >"$log" 2>&1 &
pid=$!

maddr=""
for _ in $(seq 1 100); do
    maddr=$(sed -n 's/^ctxmwd: metrics on //p' "$log" | head -1)
    [[ -n "$maddr" ]] && break
    kill -0 "$pid" 2>/dev/null || { echo "smoke: ctxmwd died:"; cat "$log"; exit 1; }
    sleep 0.1
done
if [[ -z "$maddr" ]]; then
    echo "smoke: ctxmwd never logged its metrics address:"
    cat "$log"
    exit 1
fi
echo "smoke: ops endpoint on $maddr"

health=$(curl -fsS "http://$maddr/healthz")
if [[ "$health" != ok* ]]; then
    echo "smoke: /healthz said: $health"
    exit 1
fi

curl -fsS "http://$maddr/metrics" >"$workdir/metrics.txt"
go run ./scripts/promcheck <"$workdir/metrics.txt"
for metric in ctxres_submits_total ctxres_uptime_seconds ctxres_requests_total; do
    if ! grep -q "^$metric " "$workdir/metrics.txt"; then
        echo "smoke: /metrics missing $metric"
        exit 1
    fi
done

curl -fsS "http://$maddr/statusz" | grep -q goVersion || {
    echo "smoke: /statusz missing build info"
    exit 1
}

# Subscriber leg: subscribe over the wire, submit a matching context, and
# require one pushed activation within 5s.
daddr=$(sed -n 's/^ctxmwd: serving .* on \([0-9.:]*\) .*/\1/p' "$log" | head -1)
if [[ -z "$daddr" ]]; then
    echo "smoke: ctxmwd never logged its serving address:"
    cat "$log"
    exit 1
fi
go run ./scripts/subsmoke "$daddr"

kill -TERM "$pid"
wait "$pid" || { echo "smoke: ctxmwd exited nonzero on SIGTERM:"; cat "$log"; exit 1; }
pid=""
echo "smoke: ok"
