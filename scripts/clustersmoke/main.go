// Command clustersmoke is the smoke test's clustering leg: `seed`
// submits location contexts from two sources through a router or leader,
// `verify` reads the subject back with use-latest. Extra addresses after
// the first are dial fallbacks (daemon.ClientOptions.Addrs), so `verify
// <dead-leader> <promoted-follower>` exercises exactly the failover path
// a real client takes. `fenced` asserts the split-brain guard: the
// daemon at <addr> must still answer reads but shed a write with the
// typed stale-leader code (see ctxmwd -lease-ttl).
package main

import (
	"fmt"
	"os"
	"time"

	"ctxres/internal/ctx"
	"ctxres/internal/daemon"
)

func main() {
	if len(os.Args) < 3 {
		fmt.Fprintln(os.Stderr, "usage: clustersmoke <seed|verify|fenced> <addr> [fallback-addr ...]")
		os.Exit(2)
	}
	mode, addr := os.Args[1], os.Args[2]
	client, err := daemon.DialOptions(addr, daemon.ClientOptions{
		Timeout: 5 * time.Second,
		Addrs:   os.Args[3:],
	})
	if err != nil {
		fail("dial %s: %v", addr, err)
	}
	defer client.Close()

	switch mode {
	case "seed":
		// Two sources, so a consistent-hash router spreads the workload
		// across both shards.
		now := time.Now().UTC()
		for i, src := range []string{"cs-src-a", "cs-src-b"} {
			c := ctx.NewLocation("cluster-subject", now.Add(time.Duration(i)*time.Second),
				ctx.Point{X: float64(i)},
				ctx.WithID(ctx.ID(fmt.Sprintf("cs-%d", i))),
				ctx.WithSeq(uint64(i+1)), ctx.WithSource(src))
			if _, err := client.Submit(c); err != nil {
				fail("submit %s: %v", c.ID, err)
			}
		}
		fmt.Println("clustersmoke: seeded 2 sources")
	case "verify":
		c, err := client.UseLatest(ctx.KindLocation, "cluster-subject")
		if err != nil {
			fail("use-latest: %v", err)
		}
		fmt.Printf("clustersmoke: read %s from source %s\n", c.ID, c.Source)
	case "fenced":
		// A fenced (lease-expired or deposed) leader stays useful for
		// queries...
		if err := client.Ping(); err != nil {
			fail("ping at fenced leader: %v", err)
		}
		if _, _, err := client.Stats(); err != nil {
			fail("stats at fenced leader: %v", err)
		}
		// ...but must shed state-changing operations with the typed code.
		c := ctx.NewLocation("cluster-subject", time.Now().UTC(), ctx.Point{X: 99},
			ctx.WithID("cs-fenced"), ctx.WithSeq(99), ctx.WithSource("cs-src-a"))
		_, err := client.Submit(c)
		if code := daemon.ErrorCode(err); code != daemon.CodeStaleLeader {
			fail("write at fenced leader = %v (code %q), want %s", err, code, daemon.CodeStaleLeader)
		}
		fmt.Println("clustersmoke: fenced leader sheds writes, still serves reads")
	default:
		fail("unknown mode %q", mode)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "clustersmoke: "+format+"\n", args...)
	os.Exit(1)
}
